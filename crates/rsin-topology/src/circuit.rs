//! Link-occupancy state and circuit management.
//!
//! A [`CircuitState`] overlays a [`Network`] with the dynamic facts: which
//! links are currently carrying circuits, and which circuit owns which
//! links. Establishing a circuit claims every link of a processor→resource
//! path; releasing it frees them ("the circuit between a processor and a
//! resource can be released once the request has been transmitted",
//! Section II model, point 5).
//!
//! [`CircuitState::find_path`] is the greedy primitive the paper's
//! *heuristic routing* baselines are made of: a breadth-first search over
//! currently-free links, with no lookahead over other pending requests —
//! precisely the kind of scheduling whose blocking the optimal flow-based
//! mapping is shown to beat (≈20 % vs ≈2 % on an 8×8 cube MRSIN).

use crate::network::{LinkId, Network, NodeRef};
use std::collections::VecDeque;

/// Handle to an established circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CircuitId(pub u32);

/// Errors from circuit operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A link on the requested path is already occupied.
    LinkOccupied(LinkId),
    /// The link sequence is not a contiguous processor→resource path.
    NotAPath,
    /// Unknown or already-released circuit handle.
    BadCircuit,
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::LinkOccupied(l) => write!(f, "link {} is already occupied", l.index()),
            CircuitError::NotAPath => write!(f, "links do not form a processor-to-resource path"),
            CircuitError::BadCircuit => write!(f, "unknown or already-released circuit"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// Dynamic occupancy overlay for a network.
#[derive(Debug, Clone)]
pub struct CircuitState<'a> {
    net: &'a Network,
    occupied: Vec<bool>,
    /// Links currently out of service (fault injection; the paper cites
    /// fault tolerance as an advantage of the distributed architecture).
    /// Toggled by [`fail_link`](Self::fail_link)/[`repair_link`](Self::repair_link).
    faulty: Vec<bool>,
    /// Switchboxes currently *misrouting* (Byzantine, per DESIGN §15):
    /// their links stay available — capacity-based schedulers cannot see a
    /// lying box — but a circuit through one fails to deliver. Toggled by
    /// [`set_byzantine_box`](Self::set_byzantine_box).
    byzantine: Vec<bool>,
    circuits: Vec<Option<Vec<LinkId>>>,
}

impl<'a> CircuitState<'a> {
    /// All links free.
    pub fn new(net: &'a Network) -> Self {
        CircuitState {
            net,
            occupied: vec![false; net.num_links()],
            faulty: vec![false; net.num_links()],
            byzantine: vec![false; net.num_boxes()],
            circuits: Vec::new(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &'a Network {
        self.net
    }

    /// Is this link free (neither carrying a circuit nor faulty)?
    pub fn is_free(&self, l: LinkId) -> bool {
        !self.occupied[l.index()] && !self.faulty[l.index()]
    }

    /// Mark one link faulty until [`repair_link`](Self::repair_link) is
    /// called. No new circuit may use it; live circuits over it are *not*
    /// torn down (the model is fail-stop for new allocations).
    pub fn fail_link(&mut self, l: LinkId) {
        self.faulty[l.index()] = true;
    }

    /// Mark every link touching switchbox `b` faulty (a dead switchbox).
    pub fn fail_box(&mut self, b: usize) {
        use crate::network::NodeRef;
        for l in self
            .net
            .in_links(NodeRef::Box(b))
            .into_iter()
            .chain(self.net.out_links(NodeRef::Box(b)))
        {
            self.faulty[l.index()] = true;
        }
    }

    /// Is this link currently marked faulty?
    pub fn is_faulty(&self, l: LinkId) -> bool {
        self.faulty[l.index()]
    }

    /// Return a repaired link to service. Idempotent; a link that was never
    /// failed stays healthy. Circuits are never resurrected — a repair only
    /// makes the link eligible for *new* allocations.
    pub fn repair_link(&mut self, l: LinkId) {
        self.faulty[l.index()] = false;
    }

    /// Repair every link touching switchbox `b` (the inverse of
    /// [`fail_box`](Self::fail_box)). Note this also clears faults that were
    /// injected on those links individually.
    pub fn repair_box(&mut self, b: usize) {
        use crate::network::NodeRef;
        for l in self
            .net
            .in_links(NodeRef::Box(b))
            .into_iter()
            .chain(self.net.out_links(NodeRef::Box(b)))
        {
            self.faulty[l.index()] = false;
        }
    }

    /// Number of faulty links.
    pub fn faulty_count(&self) -> usize {
        self.faulty.iter().filter(|f| **f).count()
    }

    /// Mark switchbox `b` as misrouting (`lying = true`) or honest again.
    ///
    /// Unlike [`fail_box`](Self::fail_box) this touches no link state: every
    /// link through the box stays free, so schedulers keep routing circuits
    /// across it — and those circuits silently fail to deliver. Fail-stop
    /// accounting (`faulty_count`, `is_free`) is deliberately unaffected.
    pub fn set_byzantine_box(&mut self, b: usize, lying: bool) {
        self.byzantine[b] = lying;
    }

    /// Is switchbox `b` currently misrouting?
    pub fn is_byzantine_box(&self, b: usize) -> bool {
        self.byzantine[b]
    }

    /// Number of switchboxes currently misrouting.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.iter().filter(|b| **b).count()
    }

    /// First misrouting switchbox a circuit over `links` would traverse, or
    /// `None` when every box on the path is honest (the request is
    /// delivered). A deterministic misrouter sends the request out a wrong
    /// output, off its reserved circuit — the delivery is lost even though
    /// every link was claimed successfully.
    pub fn first_byzantine_on(&self, links: &[LinkId]) -> Option<usize> {
        links.iter().find_map(|&l| match self.net.link(l).dst {
            NodeRef::Box(b) if self.byzantine[b] => Some(b),
            _ => None,
        })
    }

    /// Number of currently-occupied links.
    pub fn occupied_count(&self) -> usize {
        self.occupied.iter().filter(|&&o| o).count()
    }

    /// Ids of links unavailable for new circuits (occupied or faulty).
    pub fn occupied_links(&self) -> Vec<LinkId> {
        (0..self.net.num_links() as u32)
            .map(LinkId)
            .filter(|l| !self.is_free(*l))
            .collect()
    }

    /// Validate that `links` is a contiguous path starting at a processor
    /// and ending at a resource.
    fn validate_path(&self, links: &[LinkId]) -> Result<(), CircuitError> {
        if links.is_empty() {
            return Err(CircuitError::NotAPath);
        }
        let first = self.net.link(links[0]);
        if !matches!(first.src, NodeRef::Processor(_)) {
            return Err(CircuitError::NotAPath);
        }
        for w in links.windows(2) {
            if self.net.link(w[0]).dst != self.net.link(w[1]).src {
                return Err(CircuitError::NotAPath);
            }
        }
        let last = self.net.link(*links.last().unwrap());
        if !matches!(last.dst, NodeRef::Resource(_)) {
            return Err(CircuitError::NotAPath);
        }
        Ok(())
    }

    /// Claim every link of `links` as one circuit.
    pub fn establish(&mut self, links: &[LinkId]) -> Result<CircuitId, CircuitError> {
        self.validate_path(links)?;
        if let Some(&l) = links.iter().find(|l| !self.is_free(**l)) {
            return Err(CircuitError::LinkOccupied(l));
        }
        for &l in links {
            self.occupied[l.index()] = true;
        }
        self.circuits.push(Some(links.to_vec()));
        Ok(CircuitId(self.circuits.len() as u32 - 1))
    }

    /// Release a circuit, freeing its links.
    pub fn release(&mut self, c: CircuitId) -> Result<(), CircuitError> {
        let slot = self
            .circuits
            .get_mut(c.0 as usize)
            .ok_or(CircuitError::BadCircuit)?;
        let links = slot.take().ok_or(CircuitError::BadCircuit)?;
        for l in links {
            self.occupied[l.index()] = false;
        }
        Ok(())
    }

    /// Links of a live circuit.
    pub fn circuit_links(&self, c: CircuitId) -> Option<&[LinkId]> {
        self.circuits.get(c.0 as usize)?.as_deref()
    }

    /// The processor and resource endpoints of a live circuit.
    pub fn circuit_endpoints(&self, c: CircuitId) -> Option<(usize, usize)> {
        let links = self.circuit_links(c)?;
        let NodeRef::Processor(p) = self.net.link(*links.first()?).src else {
            return None;
        };
        let NodeRef::Resource(r) = self.net.link(*links.last()?).dst else {
            return None;
        };
        Some((p, r))
    }

    /// BFS for a free-link path from processor `p` to resource `r`.
    ///
    /// Returns the link sequence, or `None` when `r` is unreachable over
    /// free links (a *blockage* in the paper's terms).
    pub fn find_path(&self, p: usize, r: usize) -> Option<Vec<LinkId>> {
        self.find_path_to_any(p, &[r]).map(|(_, path)| path)
    }

    /// BFS from processor `p` to the *nearest* of several candidate
    /// resources; returns `(resource, path)`. This models a request entering
    /// the network without a destination tag and grabbing the first free
    /// resource it reaches.
    pub fn find_path_to_any(&self, p: usize, candidates: &[usize]) -> Option<(usize, Vec<LinkId>)> {
        let mut want = vec![false; self.net.num_resources()];
        for &r in candidates {
            want[r] = true;
        }
        let start = self.net.processor_link(p)?;
        if !self.is_free(start) {
            return None;
        }
        // BFS over elements via free links; parent[link] chains the path.
        let mut visited_box = vec![false; self.net.num_boxes()];
        let mut queue: VecDeque<LinkId> = VecDeque::new();
        let mut parent: Vec<Option<LinkId>> = vec![None; self.net.num_links()];
        queue.push_back(start);
        while let Some(l) = queue.pop_front() {
            match self.net.link(l).dst {
                NodeRef::Resource(r) => {
                    if want[r] {
                        // Reconstruct.
                        let mut path = vec![l];
                        let mut cur = l;
                        while let Some(prev) = parent[cur.index()] {
                            path.push(prev);
                            cur = prev;
                        }
                        path.reverse();
                        return Some((r, path));
                    }
                }
                NodeRef::Box(b) => {
                    if !visited_box[b] {
                        visited_box[b] = true;
                        for next in self.net.out_links(NodeRef::Box(b)) {
                            if self.is_free(next) && parent[next.index()].is_none() && next != start
                            {
                                parent[next.index()] = Some(l);
                                queue.push_back(next);
                            }
                        }
                    }
                }
                NodeRef::Processor(_) => unreachable!("links never end at processors"),
            }
        }
        None
    }

    /// Convenience: find a free path `p → r` and establish it.
    pub fn connect(&mut self, p: usize, r: usize) -> Result<CircuitId, CircuitError> {
        let path = self.find_path(p, r).ok_or(CircuitError::NotAPath)?;
        self.establish(&path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    /// 2 stages of one 2x2 box each, straight wiring: p0,p1 -> box0 -> box1 -> r0,r1.
    fn two_stage() -> Network {
        let mut b = NetworkBuilder::new("two-stage", 2, 2);
        let b0 = b.add_box(0, 2, 2);
        let b1 = b.add_box(1, 2, 2);
        b.link_proc_to_box(0, b0, 0);
        b.link_proc_to_box(1, b0, 1);
        b.link_box_to_box(b0, 0, b1, 0);
        b.link_box_to_box(b0, 1, b1, 1);
        b.link_box_to_res(b1, 0, 0);
        b.link_box_to_res(b1, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn finds_and_establishes_path() {
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        // p0 -> box0 -> box1 -> r1: three links.
        let path = cs.find_path(0, 1).unwrap();
        assert_eq!(path.len(), 3);
        cs.establish(&path).unwrap();
        assert_eq!(cs.occupied_count(), 3);
    }

    #[test]
    fn path_has_correct_shape() {
        let net = two_stage();
        let cs = CircuitState::new(&net);
        let path = cs.find_path(0, 0).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(net.link(path[0]).src, NodeRef::Processor(0));
        assert_eq!(net.link(path[2]).dst, NodeRef::Resource(0));
    }

    #[test]
    fn establish_release_cycle() {
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        let path = cs.find_path(0, 0).unwrap();
        let c = cs.establish(&path).unwrap();
        assert_eq!(cs.occupied_count(), 3);
        assert_eq!(cs.circuit_endpoints(c), Some((0, 0)));
        // Same path now blocked.
        assert!(matches!(
            cs.establish(&path),
            Err(CircuitError::LinkOccupied(_))
        ));
        cs.release(c).unwrap();
        assert_eq!(cs.occupied_count(), 0);
        // Double release rejected.
        assert_eq!(cs.release(c), Err(CircuitError::BadCircuit));
    }

    #[test]
    fn blocked_path_returns_none() {
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        // Occupy p0's only exit.
        let c = cs.connect(0, 0).unwrap();
        assert!(cs.find_path(0, 1).is_none());
        cs.release(c).unwrap();
        assert!(cs.find_path(0, 1).is_some());
    }

    #[test]
    fn shared_inter_stage_link_causes_blockage() {
        // With p0 -> r0 established through box0 output 0, p1 can still
        // reach r1 via box0 output 1.
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        cs.connect(0, 0).unwrap();
        assert!(cs.find_path(1, 1).is_some());
        // But r0's input link is taken, so p1 -> r0 is blocked.
        assert!(cs.find_path(1, 0).is_none());
    }

    #[test]
    fn find_path_to_any_picks_reachable_candidate() {
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        cs.connect(0, 0).unwrap();
        let (r, path) = cs.find_path_to_any(1, &[0, 1]).unwrap();
        assert_eq!(r, 1);
        assert!(!path.is_empty());
    }

    #[test]
    fn faulty_link_blocks_routing() {
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        let path = cs.find_path(0, 0).unwrap();
        // Failing one inter-stage link leaves the alternate route alive.
        cs.fail_link(path[1]);
        assert_eq!(cs.faulty_count(), 1);
        assert!(cs.find_path(0, 0).is_some());
        // ...but the old path can no longer be established verbatim.
        assert!(cs.establish(&path).is_err());
        // Failing the processor's only exit link kills p0 completely.
        cs.fail_link(path[0]);
        assert!(cs.find_path(0, 0).is_none());
        assert!(cs.find_path(0, 1).is_none());
        // Unrelated pairs still route.
        assert!(cs.find_path(1, 1).is_some());
    }

    #[test]
    fn dead_box_kills_all_its_links() {
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        cs.fail_box(0);
        // Box 0 touches all processor links plus the inter-stage links.
        assert_eq!(cs.faulty_count(), 4);
        for p in 0..2 {
            for r in 0..2 {
                assert!(cs.find_path(p, r).is_none());
            }
        }
    }

    #[test]
    fn byzantine_box_is_invisible_to_routing_but_poisons_paths() {
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        cs.set_byzantine_box(0, true);
        // Routing and establishment are oblivious: no link is down.
        assert_eq!(cs.faulty_count(), 0);
        assert_eq!(cs.byzantine_count(), 1);
        let path = cs.find_path(0, 1).unwrap();
        // ...but the path crosses the liar, so delivery would fail.
        assert_eq!(cs.first_byzantine_on(&path), Some(0));
        cs.establish(&path).unwrap();
        // Honesty restored: the same path delivers.
        cs.set_byzantine_box(0, false);
        assert_eq!(cs.first_byzantine_on(&path), None);
        assert!(!cs.is_byzantine_box(0));
    }

    #[test]
    fn rejects_non_path_sequences() {
        let net = two_stage();
        let mut cs = CircuitState::new(&net);
        // Reversed path is not contiguous from a processor.
        let mut path = cs.find_path(0, 0).unwrap();
        path.reverse();
        assert_eq!(cs.establish(&path), Err(CircuitError::NotAPath));
        assert_eq!(cs.establish(&[]), Err(CircuitError::NotAPath));
    }
}
