//! Static analysis of interconnection networks.
//!
//! The survey metrics a network designer compares topologies by (Feng
//! \[16\], which the paper's introduction leans on): hardware complexity
//! (boxes, links, crosspoints, legal switch states), path structure
//! (distance, path multiplicity), and blocking character (nonblocking /
//! rearrangeable / blocking, estimated from exact permutation routing).

use crate::circuit::CircuitState;
use crate::network::Network;
use crate::routing;
use crate::switchbox::Switchbox;

/// Blocking classification of a topology under full permutation traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingClass {
    /// Every sampled permutation routed greedily one pair at a time in
    /// every sampled order (a stronger-than-rearrangeable observation; a
    /// crossbar is the canonical member).
    ApparentlyNonblocking,
    /// Every sampled permutation routable from an empty network
    /// (rearrangeable, like the Benes network).
    ApparentlyRearrangeable,
    /// Some sampled permutation cannot be routed at all (a blocking
    /// network, like every single-path banyan).
    Blocking,
}

/// The report card of one topology.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Topology name.
    pub name: String,
    /// Processors / resources.
    pub ports: (usize, usize),
    /// Switchbox count.
    pub boxes: usize,
    /// Stage count.
    pub stages: usize,
    /// Directed link count.
    pub links: usize,
    /// Total crosspoints (Σ inputs×outputs over boxes) — the hardware cost
    /// a crossbar comparison is made against.
    pub crosspoints: usize,
    /// Σ log2(legal switch settings) over boxes — the network's control
    /// state in bits.
    pub control_bits: f64,
    /// Shortest/longest processor→resource path length in links.
    pub path_length: (usize, usize),
    /// Min/max number of distinct paths over all (p, r) pairs.
    pub path_multiplicity: (usize, usize),
    /// Fraction of sampled permutations routable from an empty network.
    pub admissibility: f64,
    /// Blocking classification.
    pub class: BlockingClass,
}

/// Analyze a network (samples `perm_samples` permutations with `seed`).
pub fn analyze(net: &Network, perm_samples: usize, seed: u64) -> NetworkReport {
    let cs = CircuitState::new(net);
    let mut crosspoints = 0usize;
    let mut control_bits = 0.0f64;
    for b in 0..net.num_boxes() {
        let spec = net.box_spec(b);
        crosspoints += spec.inputs * spec.outputs;
        control_bits += (Switchbox::num_legal_settings(spec.inputs, spec.outputs) as f64).log2();
    }
    let mut shortest = usize::MAX;
    let mut longest = 0usize;
    let mut multi_min = usize::MAX;
    let mut multi_max = 0usize;
    for p in 0..net.num_processors() {
        for r in 0..net.num_resources() {
            let paths = routing::enumerate_paths(&cs, p, r);
            multi_min = multi_min.min(paths.len());
            multi_max = multi_max.max(paths.len());
            for path in &paths {
                shortest = shortest.min(path.len());
                longest = longest.max(path.len());
            }
        }
    }
    if shortest == usize::MAX {
        shortest = 0;
    }
    let admissibility = routing::permutation_admissibility(&cs, perm_samples, seed);
    let class = if admissibility < 1.0 {
        BlockingClass::Blocking
    } else if greedy_nonblocking_probe(&cs, perm_samples.min(10), seed) {
        BlockingClass::ApparentlyNonblocking
    } else {
        BlockingClass::ApparentlyRearrangeable
    };
    NetworkReport {
        name: net.name().to_string(),
        ports: (net.num_processors(), net.num_resources()),
        boxes: net.num_boxes(),
        stages: net.num_stages(),
        links: net.num_links(),
        crosspoints,
        control_bits,
        path_length: (shortest, longest),
        path_multiplicity: (
            if multi_min == usize::MAX {
                0
            } else {
                multi_min
            },
            multi_max,
        ),
        admissibility,
        class,
    }
}

/// Probe for nonblocking behaviour: serve sampled permutations pair by
/// pair, greedily (first enumerated path), never backtracking. True if no
/// pair ever blocks — the defining behaviour of a nonblocking network.
fn greedy_nonblocking_probe(cs: &CircuitState, samples: usize, seed: u64) -> bool {
    let n = cs.network().num_processors();
    if n != cs.network().num_resources() {
        return false;
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..samples {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut scratch = cs.clone();
        for (p, &r) in perm.iter().enumerate() {
            match scratch.find_path(p, r) {
                Some(path) => {
                    scratch.establish(&path).expect("free path");
                }
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{benes, crossbar, gamma, omega};

    #[test]
    fn omega_report() {
        let net = omega(8).unwrap();
        let r = analyze(&net, 40, 1);
        assert_eq!(r.ports, (8, 8));
        assert_eq!(r.boxes, 12);
        assert_eq!(r.stages, 3);
        assert_eq!(r.links, 32);
        assert_eq!(r.crosspoints, 48);
        // 12 boxes x log2(7 legal settings of a 2x2 crossbar).
        assert!((r.control_bits - 12.0 * 7f64.log2()).abs() < 1e-9);
        assert_eq!(r.path_length, (4, 4));
        assert_eq!(r.path_multiplicity, (1, 1));
        assert_eq!(r.class, BlockingClass::Blocking);
        assert!(r.admissibility > 0.0 && r.admissibility < 1.0);
    }

    #[test]
    fn benes_is_rearrangeable() {
        let net = benes(8).unwrap();
        let r = analyze(&net, 25, 2);
        assert_eq!(r.admissibility, 1.0);
        // Benes blocks under greedy pair-by-pair service, so it must be
        // classified rearrangeable, not nonblocking.
        assert_eq!(r.class, BlockingClass::ApparentlyRearrangeable);
        assert_eq!(r.path_multiplicity.0, 4); // 2^(n-1) paths in benes-8
    }

    #[test]
    fn crossbar_is_nonblocking() {
        let net = crossbar(6, 6).unwrap();
        let r = analyze(&net, 20, 3);
        assert_eq!(r.class, BlockingClass::ApparentlyNonblocking);
        assert_eq!(r.crosspoints, 36);
        assert_eq!(r.path_length, (2, 2));
    }

    #[test]
    fn gamma_has_multipath_structure() {
        let net = gamma(8).unwrap();
        let r = analyze(&net, 15, 4);
        assert!(r.path_multiplicity.1 > 1);
        assert!(r.path_multiplicity.0 >= 1);
    }
}
