//! Wiring permutations used by the MIN builders.
//!
//! All functions operate on `n`-bit line indices `0..2^n` and are their own
//! documentation of the classic interconnection patterns: the perfect
//! shuffle (Stone), its inverse, bit reversal, the exchange (cube-k)
//! permutation, and the bit-relocation maps used to express bit-controlled
//! banyan networks (cube, indirect binary n-cube) in a uniform framework.

/// Perfect shuffle on `n`-bit indices: rotate the bits left by one
/// (`b_{n-1} b_{n-2} … b_0 → b_{n-2} … b_0 b_{n-1}`).
pub fn perfect_shuffle(x: usize, n: u32) -> usize {
    debug_assert!(n > 0 && x < (1 << n));
    let mask = (1usize << n) - 1;
    ((x << 1) | (x >> (n - 1))) & mask
}

/// Inverse perfect shuffle: rotate the bits right by one.
pub fn inverse_shuffle(x: usize, n: u32) -> usize {
    debug_assert!(n > 0 && x < (1 << n));
    let lsb = x & 1;
    (x >> 1) | (lsb << (n - 1))
}

/// The cube-k (exchange) permutation: complement bit `k`.
pub fn cube(x: usize, k: u32) -> usize {
    x ^ (1 << k)
}

/// Reverse the low `n` bits of `x`.
pub fn bit_reversal(x: usize, n: u32) -> usize {
    let mut out = 0;
    for i in 0..n {
        if x & (1 << i) != 0 {
            out |= 1 << (n - 1 - i);
        }
    }
    out
}

/// Move bit `k` of `x` to the least-significant position, preserving the
/// relative order of the other bits. Lines that differ only in bit `k` map
/// to adjacent indices `2b` / `2b+1`, i.e. to the two ports of box `b` —
/// the standard trick for laying out bit-controlled banyan stages.
pub fn move_bit_to_lsb(x: usize, k: u32) -> usize {
    let low = x & ((1usize << k) - 1);
    let bit = (x >> k) & 1;
    let high = x >> (k + 1);
    (high << (k + 1)) | (low << 1) | bit
}

/// Inverse of [`move_bit_to_lsb`].
pub fn move_lsb_to_bit(x: usize, k: u32) -> usize {
    let bit = x & 1;
    let rest = x >> 1;
    let low = rest & ((1usize << k) - 1);
    let high = rest >> k;
    (high << (k + 1)) | (bit << k) | low
}

/// Inverse shuffle restricted to aligned blocks of size `2^bits` (the
/// baseline network's inter-stage pattern).
pub fn block_inverse_shuffle(x: usize, block_bits: u32) -> usize {
    let block = x >> block_bits << block_bits;
    let offset = x - block;
    block + inverse_shuffle(offset, block_bits)
}

/// Perfect shuffle restricted to aligned blocks of size `2^bits` (the
/// gathering pattern of the Benes network's back half).
pub fn block_perfect_shuffle(x: usize, block_bits: u32) -> usize {
    let block = x >> block_bits << block_bits;
    let offset = x - block;
    block + perfect_shuffle(offset, block_bits)
}

/// `a`-ary perfect shuffle on `0..a^digits`: rotate the base-`a` digits
/// left by one. For `a = 2` this is [`perfect_shuffle`]. Used by the delta
/// network builder.
pub fn ary_shuffle(x: usize, a: usize, digits: u32) -> usize {
    let size = a.pow(digits);
    debug_assert!(x < size);
    (x * a) % size + (x * a) / size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_roundtrip() {
        for n in 1..6u32 {
            for x in 0..(1usize << n) {
                assert_eq!(inverse_shuffle(perfect_shuffle(x, n), n), x);
                assert_eq!(perfect_shuffle(inverse_shuffle(x, n), n), x);
            }
        }
    }

    #[test]
    fn shuffle_known_values() {
        // n = 3: shuffle(1) = 2, shuffle(4) = 1 (100 -> 001).
        assert_eq!(perfect_shuffle(1, 3), 2);
        assert_eq!(perfect_shuffle(4, 3), 1);
        assert_eq!(perfect_shuffle(7, 3), 7);
        assert_eq!(perfect_shuffle(0, 3), 0);
    }

    #[test]
    fn cube_is_involution() {
        for k in 0..4 {
            for x in 0..16 {
                assert_eq!(cube(cube(x, k), k), x);
                assert_ne!(cube(x, k), x);
            }
        }
    }

    #[test]
    fn bit_reversal_involution_and_values() {
        for n in 1..6u32 {
            for x in 0..(1usize << n) {
                assert_eq!(bit_reversal(bit_reversal(x, n), n), x);
            }
        }
        assert_eq!(bit_reversal(0b001, 3), 0b100);
        assert_eq!(bit_reversal(0b110, 3), 0b011);
    }

    #[test]
    fn move_bit_roundtrip() {
        for k in 0..4u32 {
            for x in 0..32usize {
                assert_eq!(move_lsb_to_bit(move_bit_to_lsb(x, k), k), x);
            }
        }
    }

    #[test]
    fn move_bit_pairs_partners_adjacently() {
        // Lines differing only in bit k become 2b and 2b+1.
        for k in 0..4u32 {
            for x in 0..16usize {
                let a = move_bit_to_lsb(x, k);
                let b = move_bit_to_lsb(cube(x, k), k);
                assert_eq!(a >> 1, b >> 1, "same box");
                assert_eq!((a & 1) ^ 1, b & 1, "opposite ports");
            }
        }
    }

    #[test]
    fn move_bit_zero_is_identity() {
        for x in 0..32usize {
            assert_eq!(move_bit_to_lsb(x, 0), x);
        }
    }

    #[test]
    fn block_inverse_shuffle_stays_in_block() {
        for x in 0..16usize {
            let y = block_inverse_shuffle(x, 2);
            assert_eq!(x >> 2, y >> 2, "block preserved");
        }
        // Within block of 4: 0->0, 1->2, 2->1, 3->3.
        assert_eq!(block_inverse_shuffle(5, 2), 6);
        assert_eq!(block_inverse_shuffle(6, 2), 5);
    }

    #[test]
    fn block_perfect_shuffle_inverts_block_inverse() {
        for bits in 1..4u32 {
            for x in 0..16usize {
                assert_eq!(
                    block_perfect_shuffle(block_inverse_shuffle(x, bits), bits),
                    x
                );
            }
        }
    }

    #[test]
    fn ary_shuffle_generalizes_binary() {
        for x in 0..8usize {
            assert_eq!(ary_shuffle(x, 2, 3), perfect_shuffle(x, 3));
        }
        // Base 3, 2 digits: x = 3a+b -> 3b+a.
        assert_eq!(ary_shuffle(5, 3, 2), 7); // 12_3 -> 21_3
        assert_eq!(ary_shuffle(8, 3, 2), 8); // 22_3 fixed
                                             // It is a permutation.
        let image: std::collections::HashSet<_> = (0..27).map(|x| ary_shuffle(x, 3, 3)).collect();
        assert_eq!(image.len(), 27);
    }

    #[test]
    fn all_are_permutations() {
        use std::collections::HashSet;
        let n = 4u32;
        let size = 1usize << n;
        let funcs: Vec<Box<dyn Fn(usize) -> usize>> = vec![
            Box::new(move |x| perfect_shuffle(x, n)),
            Box::new(move |x| inverse_shuffle(x, n)),
            Box::new(move |x| bit_reversal(x, n)),
            Box::new(move |x| cube(x, 2)),
            Box::new(move |x| move_bit_to_lsb(x, 2)),
            Box::new(move |x| block_inverse_shuffle(x, 3)),
        ];
        for f in funcs {
            let image: HashSet<_> = (0..size).map(&f).collect();
            assert_eq!(image.len(), size);
        }
    }
}
