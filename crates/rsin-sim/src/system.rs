//! Dynamic discrete-event simulation of the full resource-sharing system
//! (Section II model, points 1–5).
//!
//! * Tasks arrive at each processor as a Poisson process and queue there;
//!   a processor transmits **one task at a time** (model point 5).
//! * When pending requests and free resources coexist, a scheduling cycle
//!   runs (any [`Scheduler`]), establishing circuits for the allocated
//!   requests; blocked requests stay queued for the next cycle.
//! * The circuit is **released once the task has been transmitted**; the
//!   resource stays busy until the task completes (point 5), modelling why
//!   circuit switching beats packet switching here (point 1: "a task cannot
//!   be processed until it is completely received").
//!
//! Outputs: resource utilization, task response time, queue lengths, and
//! per-cycle blocking — the performance indexes the paper's scheduling
//! objective optimizes.

use crate::metrics::Sample;
use crate::workload::{exponential, trial_rng};
use rand::rngs::StdRng;
use rand::Rng;
use rsin_core::conformance::ConformanceDetector;
use rsin_core::model::{FreeResource, ScheduleProblem, ScheduleRequest};
use rsin_core::scheduler::{ScheduleError, ScheduleScratch, Scheduler};
use rsin_obs::{Counter, NoopProbe, NoopTracer, Probe, SpanPhase, Tracer};
use rsin_topology::{
    CircuitError, CircuitId, CircuitState, FaultAction, FaultDomain, FaultPlan, FaultPlanConfig,
    FaultTarget, Network,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Salt separating the fault-plan RNG stream from the arrival/service
/// stream of the same `(seed, trial)` pair: both follow the `trial_rng`
/// stream-splitting convention, but a plan must never replay (or perturb)
/// the simulation's own draws.
const FAULT_STREAM_SALT: u64 = 0xFA17_57A7_0000_D001;

/// Seed for the [`FaultPlan`] of a `(seed, trial)` pair, mirroring
/// [`trial_rng`]'s convention with an extra stream salt.
pub fn fault_plan_seed(seed: u64, trial: u64) -> u64 {
    (seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ FAULT_STREAM_SALT
}

/// Parameters of a dynamic simulation.
#[derive(Debug, Clone, Copy)]
pub struct DynamicConfig {
    /// Task arrival rate per processor (Poisson).
    pub arrival_rate: f64,
    /// Mean task transmission time (exponential; circuit held this long).
    pub mean_transmission: f64,
    /// Mean resource service time (exponential; resource busy this long
    /// after transmission completes).
    pub mean_service: f64,
    /// Simulated time horizon.
    pub sim_time: f64,
    /// Statistics ignore events before this time (warm-up).
    pub warmup: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of resource types (1 = homogeneous). Resource `r` has type
    /// `r % types`; each arriving task draws a uniform type, so the offered
    /// load is balanced across types.
    pub types: usize,
    /// Number of priority/preference levels (1 = the classic unpriced
    /// model). Processor `p` requests at priority `1 + p % levels` and
    /// resource `r` offers preference `1 + r % levels` — deterministic, no
    /// RNG draws — so with `levels == 1` every run is bit-identical to the
    /// unpriced simulator, while `levels > 1` gives degraded-mode recovery
    /// a non-trivial Transformation-2 cost surface to optimize over.
    pub priority_levels: u32,
    /// Target resource utilization ρ (heavy-traffic knob). `0.0` disables
    /// the knob and `arrival_rate` is used verbatim — bit-identical to the
    /// pre-knob simulator. When `rho > 0.0` the per-processor arrival rate
    /// is derived at run time from the network shape as
    /// `ρ · nr / (np · (mean_transmission + mean_service))`, so offered
    /// load scales with the resource pool and `ρ ≥ 1` puts the system past
    /// its saturation point (queues grow without bound; see
    /// [`DynamicStats::final_queue`]).
    pub rho: f64,
    /// Tasks enqueued per arrival event (bursty/batch arrivals). The
    /// inter-arrival gap stretches by the same factor, so the *offered*
    /// load is unchanged while arrivals come in bursts. `1` (and `0`,
    /// normalized to `1`) reproduces the Poisson-per-task stream
    /// bit-identically.
    pub batch_size: usize,
    /// Per-processor queue bound. `0` = unbounded (the classic model,
    /// bit-identical). With a bound, an arrival finding its processor's
    /// queue full is **shed** — dropped, never scheduled — and counted in
    /// [`DynamicStats::shed_arrivals`]; sub-saturation runs with a generous
    /// bound shed nothing.
    pub queue_capacity: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            arrival_rate: 0.1,
            mean_transmission: 0.2,
            mean_service: 1.0,
            sim_time: 1000.0,
            warmup: 100.0,
            seed: 1,
            types: 1,
            priority_levels: 1,
            rho: 0.0,
            batch_size: 1,
            queue_capacity: 0,
        }
    }
}

impl DynamicConfig {
    /// The per-processor arrival rate this config actually runs at on a
    /// network with `np` processors and `nr` resources: `arrival_rate`
    /// unless the utilization-targeting `rho` knob is set, in which case
    /// the rate that makes the *offered* resource utilization equal ρ
    /// (each task holds a resource for `mean_transmission + mean_service`
    /// on average).
    pub fn effective_arrival_rate(&self, np: usize, nr: usize) -> f64 {
        if self.rho > 0.0 {
            let hold = self.mean_transmission + self.mean_service;
            self.rho * nr as f64 / (np.max(1) as f64 * hold.max(f64::MIN_POSITIVE))
        } else {
            self.arrival_rate
        }
    }
}

/// How a scheduling cycle handles blocked requests while the topology is
/// degraded (at least one component faulty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedPolicy {
    /// No retry: blocked requests are shed (stay queued) immediately.
    None,
    /// Unpriced alternate-path retry: each blocked request BFSes to *any*
    /// still-untaken type-compatible free resource
    /// ([`Scheduler::try_schedule_degraded`]).
    Bfs,
    /// Priced retry: a residual Transformation-2 min-cost solve over the
    /// blocked requests and still-free resources picks the minimum-cost
    /// maximal recovery ([`Scheduler::try_schedule_degraded_priced`]).
    Priced,
}

impl DegradedPolicy {
    /// Short identifier used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DegradedPolicy::None => "none",
            DegradedPolicy::Bfs => "bfs",
            DegradedPolicy::Priced => "priced",
        }
    }
}

/// Typed failure of a dynamic simulation run.
///
/// The event loop used to `panic!`/`unwrap` at these sites; every failure is
/// either a scheduler error bubbling up or a simulator bookkeeping invariant,
/// and the `try_*` entry points surface them as values instead of tearing a
/// worker thread down mid-experiment. The panicking entry points remain as
/// thin boundaries over the `try_*` ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The scheduler returned an error mid-cycle.
    Schedule {
        /// [`Scheduler::name`] of the failing scheduler.
        scheduler: &'static str,
        /// The underlying scheduling error.
        error: ScheduleError,
    },
    /// A circuit operation the event loop believed safe was rejected.
    Circuit {
        /// What the event loop was doing when it failed.
        context: &'static str,
        /// The underlying circuit error.
        error: CircuitError,
    },
    /// A simulator bookkeeping invariant broke (queue/assignment mismatch).
    State(&'static str),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Schedule { scheduler, error } => {
                write!(f, "{scheduler} failed to schedule: {error}")
            }
            SimError::Circuit { context, error } => write!(f, "{context}: {error}"),
            SimError::State(m) => write!(f, "simulator invariant violated: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate results of a dynamic run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicStats {
    /// Mean fraction of resources busy (post-warmup time average).
    pub utilization: f64,
    /// Mean task response time (arrival → service completion).
    pub mean_response: f64,
    /// 95 % confidence half-width of the response-time mean.
    pub response_ci95: f64,
    /// 99th-percentile task response time (log2-histogram estimate; see
    /// [`Sample::p99`]).
    pub response_p99: f64,
    /// Tasks completed after warm-up.
    pub completed: u64,
    /// Time-averaged number of queued (unallocated) tasks.
    pub mean_queue: f64,
    /// Scheduling cycles executed.
    pub cycles: u64,
    /// Mean per-cycle blocking fraction (cycles with contention only).
    pub mean_blocking: f64,
    /// Arrivals dropped because their processor's bounded queue was full
    /// (see [`DynamicConfig::queue_capacity`]); always 0 with an unbounded
    /// queue. Distinct from degraded-mode shedding, which defers requests
    /// without losing them.
    pub shed_arrivals: u64,
    /// Tasks still queued (unallocated) when the horizon was reached — the
    /// queue-growth signal of the heavy-traffic regime: bounded and small
    /// below saturation, growing roughly linearly in the horizon at ρ ≥ 1.
    pub final_queue: u64,
    /// The full post-warmup response-time accumulator (Welford state plus
    /// log2 histogram) that `mean_response`/`response_ci95`/`response_p99`
    /// are read from. Exposed so replicated runs can pool the response
    /// *distributions* across replicas via [`Sample::merge`] instead of
    /// averaging pre-digested scalars.
    pub response: Sample,
}

/// Survival metrics of a faulted dynamic run, wrapping the ordinary
/// [`DynamicStats`]. Compare `stats.completed` against a fault-free
/// baseline run (same config, [`FaultPlan::empty`]) for the "allocations
/// achieved vs. fault-free" survival ratio.
#[derive(Debug, Clone, Copy)]
pub struct FaultedStats {
    /// The ordinary dynamic statistics (post-warmup, as in [`SystemSim::run`]).
    pub stats: DynamicStats,
    /// Circuits established over the whole run (fault plans are
    /// absolute-time schedules, so fault metrics are not warm-up filtered).
    pub allocations: u64,
    /// Requests left unallocated by degraded-mode cycles (summed
    /// [`DegradedOutcome::shed`](rsin_core::DegradedOutcome)); blocked
    /// requests stay queued, so this counts deferrals, not losses.
    pub shed_total: u64,
    /// Blocked requests rescued by the alternate-path retry.
    pub recovered_total: u64,
    /// `Fail` events applied before the horizon.
    pub failures: u64,
    /// `Repair` events applied before the horizon.
    pub repairs: u64,
    /// Mean time from a repair event to the next scheduling cycle that
    /// sheds nothing (service fully restored); 0 if never observed.
    pub mean_recovery: f64,
    /// How many repair→zero-shed intervals the mean is over.
    pub recoveries_observed: u64,
    /// Transformation-graph rebuilds over the whole run. Stays at its
    /// fault-free value (1 per transformation shape used) because fault
    /// toggles are incremental capacity patches.
    pub transform_rebuilds: u64,
    /// Total Transformation-2 cost added by degraded-mode recoveries over
    /// the whole run (summed per-cycle `recovery_cost`; the cost of
    /// degradation). 0 when nothing is recovered, when
    /// `priority_levels == 1` (all costs collapse to 0), or under
    /// [`DegradedPolicy::None`].
    pub recovery_cost: i64,
    /// Circuits that established but failed to deliver because a Byzantine
    /// box misrouted them; the task re-queues and retries. Always 0 on
    /// plans without [`FaultTarget::ByzantineBox`] events.
    pub misrouted: u64,
    /// Boxes flagged by the differential conformance detector over the run.
    pub byz_flagged: u64,
    /// Flagged boxes that were *not* misrouting when flagged (honest boxes
    /// condemned by co-location). Expected 0: deterministic misrouters fail
    /// every path through them while honest boxes are exonerated by their
    /// own deliveries.
    pub byz_false_positives: u64,
    /// Mean scheduling cycles from Byzantine onset to the detector flagging
    /// the box; 0 if no true detection was observed.
    pub mean_detection_cycles: f64,
    /// How many true detections the mean is over.
    pub detections_observed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival {
        processor: usize,
    },
    TransmissionDone {
        processor: usize,
        resource: usize,
        circuit: CircuitId,
        arrived: f64,
        /// Lifecycle-trace request id of the transmitting task (0 when the
        /// run is untraced).
        req: u64,
        /// The task's resource type, kept so a misrouted task can re-queue.
        ty: usize,
        /// Whether the transmission actually reached `resource`. False only
        /// when a Byzantine box on the circuit misrouted it; the task then
        /// returns to the front of its processor's queue instead of being
        /// serviced.
        delivered: bool,
    },
    ServiceDone {
        resource: usize,
        arrived: f64,
    },
    /// The `index`-th event of the run's [`FaultPlan`] takes effect.
    Fault {
        index: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The dynamic simulator. One instance per (network, config) pair.
pub struct SystemSim<'n> {
    net: &'n Network,
    cfg: DynamicConfig,
}

impl<'n> SystemSim<'n> {
    /// Create a simulator.
    pub fn new(net: &'n Network, cfg: DynamicConfig) -> Self {
        SystemSim { net, cfg }
    }

    /// Run to the horizon under the given scheduler.
    pub fn run(&self, scheduler: &dyn Scheduler) -> DynamicStats {
        // Delegating with an empty plan is bit-identical to the fault-free
        // loop: no fault events enter the heap, no extra RNG draws happen,
        // and fault-free cycles never take the degraded-retry path.
        self.run_faulted_trial(scheduler, &FaultPlan::empty(), 0)
            .stats
    }

    /// [`Self::run`] reporting to a telemetry probe. Probes only observe —
    /// the statistics are bit-identical to the unobserved run.
    pub fn run_probed(&self, scheduler: &dyn Scheduler, probe: &dyn Probe) -> DynamicStats {
        self.run_faulted_trial_probed(scheduler, &FaultPlan::empty(), 0, probe)
            .stats
    }

    /// Run to the horizon with the given fault plan injected (trial 0's RNG
    /// stream). See [`SystemSim::run_faulted_trial`].
    pub fn run_faulted(&self, scheduler: &dyn Scheduler, plan: &FaultPlan) -> FaultedStats {
        self.run_faulted_trial(scheduler, plan, 0)
    }

    /// Run to the horizon under the given scheduler with `plan`'s fault
    /// events interleaved into the event stream, drawing arrivals and
    /// service times from the `(cfg.seed, trial)` RNG stream.
    ///
    /// Fault events are pushed into the event heap up front and consume no
    /// simulation randomness, so a run with [`FaultPlan::empty`] reproduces
    /// [`SystemSim::run`] exactly. While at least one component is faulty,
    /// scheduling cycles go through
    /// [`Scheduler::try_schedule_degraded`] — primary discipline, then
    /// alternate-path retry for blocked requests — and the shed/recovered
    /// counts feed the survival metrics. The transformation graph is never
    /// rebuilt on a fault or repair: toggles arrive as incremental capacity
    /// patches (see `FaultedStats::transform_rebuilds`).
    pub fn run_faulted_trial(
        &self,
        scheduler: &dyn Scheduler,
        plan: &FaultPlan,
        trial: u64,
    ) -> FaultedStats {
        self.run_faulted_trial_probed(scheduler, plan, trial, &NoopProbe)
    }

    /// [`Self::run_faulted_trial`] with an explicit degraded-mode policy:
    /// how blocked requests are handled during faulty cycles (shed
    /// immediately, BFS-retried, or recovered by a residual min-cost solve;
    /// see [`DegradedPolicy`]). [`Self::run_faulted_trial`] is the
    /// [`DegradedPolicy::Bfs`] special case. The policy only takes effect
    /// while something is faulty, so all policies are bit-identical under an
    /// empty plan.
    pub fn run_faulted_trial_policy(
        &self,
        scheduler: &dyn Scheduler,
        plan: &FaultPlan,
        trial: u64,
        policy: DegradedPolicy,
    ) -> FaultedStats {
        self.run_faulted_trial_policy_probed(scheduler, plan, trial, policy, &NoopProbe)
    }

    /// [`Self::run_faulted_trial`] reporting to a telemetry probe: arrival,
    /// release, fault, and repair events go into the probe's trace (with
    /// matching counters), per-cycle queue depths land in
    /// [`rsin_obs::Hist::QueueDepth`], and every scheduling cycle runs
    /// through the scheduler's observed entry points
    /// ([`Scheduler::try_schedule_observed`] /
    /// [`Scheduler::try_schedule_degraded_observed`]). Probes only observe:
    /// they consume no simulation randomness and influence no control flow,
    /// so the returned statistics are bit-identical to the unobserved run
    /// ([`NoopProbe`] is exactly that run).
    pub fn run_faulted_trial_probed(
        &self,
        scheduler: &dyn Scheduler,
        plan: &FaultPlan,
        trial: u64,
        probe: &dyn Probe,
    ) -> FaultedStats {
        self.run_faulted_trial_policy_probed(scheduler, plan, trial, DegradedPolicy::Bfs, probe)
    }

    /// [`Self::run_faulted_trial_policy`] reporting to a telemetry probe
    /// (see [`Self::run_faulted_trial_probed`] for the probe contract).
    ///
    /// Panics on [`SimError`] — the historical boundary behaviour for
    /// experiment drivers. Use [`Self::try_run_faulted_trial_policy_probed`]
    /// to handle failures as values.
    pub fn run_faulted_trial_policy_probed(
        &self,
        scheduler: &dyn Scheduler,
        plan: &FaultPlan,
        trial: u64,
        policy: DegradedPolicy,
        probe: &dyn Probe,
    ) -> FaultedStats {
        self.try_run_faulted_trial_policy_probed(scheduler, plan, trial, policy, probe)
            .unwrap_or_else(|e| panic!("dynamic simulation failed: {e}"))
    }

    /// [`Self::run_faulted_trial_policy_probed`] with typed errors: the
    /// event loop propagates scheduler failures and bookkeeping-invariant
    /// violations as [`SimError`] instead of panicking mid-run.
    pub fn try_run_faulted_trial_policy_probed(
        &self,
        scheduler: &dyn Scheduler,
        plan: &FaultPlan,
        trial: u64,
        policy: DegradedPolicy,
        probe: &dyn Probe,
    ) -> Result<FaultedStats, SimError> {
        self.try_run_faulted_trial_policy_traced(scheduler, plan, trial, policy, probe, &NoopTracer)
    }

    /// [`Self::try_run_faulted_trial_policy_probed`] plus per-request
    /// lifecycle spans: every task emits `submit` at arrival, `allocate`
    /// when its circuit is established, and `release` when transmission
    /// completes, with `shed` / `recovered` markers on degraded cycles.
    /// Request ids are globally unique within the run. The tracer follows
    /// the probe contract — it only records, so statistics are
    /// bit-identical to the untraced run.
    pub fn try_run_faulted_trial_policy_traced(
        &self,
        scheduler: &dyn Scheduler,
        plan: &FaultPlan,
        trial: u64,
        policy: DegradedPolicy,
        probe: &dyn Probe,
        tracer: &dyn Tracer,
    ) -> Result<FaultedStats, SimError> {
        let cfg = &self.cfg;
        let mut rng: StdRng = trial_rng(cfg.seed, trial);
        let np = self.net.num_processors();
        let nr = self.net.num_resources();

        // Heavy-traffic regime: ρ overrides the arrival rate, and batches
        // stretch the inter-arrival gap by their size so the offered load
        // is unchanged. With the defaults (rho 0, batch 1) `gap_rate`
        // equals `cfg.arrival_rate` and every RNG draw below lands exactly
        // where the pre-knob simulator drew it.
        let batch = cfg.batch_size.max(1);
        let gap_rate = cfg.effective_arrival_rate(np, nr) / batch as f64;

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
            *seq += 1;
            heap.push(Event {
                time,
                seq: *seq,
                kind,
            });
        };
        for p in 0..np {
            let t = exponential(&mut rng, gap_rate);
            push(&mut heap, &mut seq, t, EventKind::Arrival { processor: p });
        }
        for (index, fe) in plan.events().iter().enumerate() {
            push(&mut heap, &mut seq, fe.time, EventKind::Fault { index });
        }

        let mut cs = CircuitState::new(self.net);
        // One scratch for the whole run: every scheduling cycle reuses the
        // same transformation graph and solver buffers (the topology never
        // changes mid-run).
        let mut scratch = ScheduleScratch::new();
        // Each queued task is (arrival time, resource type, trace req id).
        let mut queue: Vec<VecDeque<(f64, usize, u64)>> = vec![VecDeque::new(); np];
        let mut next_req = 0u64;
        let mut transmitting = vec![false; np];
        let mut busy = vec![false; nr];

        let mut busy_integral = 0.0;
        let mut queue_integral = 0.0;
        let mut last_t = cfg.warmup;
        let mut response = Sample::new();
        let mut blocking = Sample::new();
        let mut completed = 0u64;
        let mut cycles = 0u64;

        let levels = cfg.priority_levels.max(1);
        let mut shed_arrivals = 0u64;
        let mut allocations = 0u64;
        let mut shed_total = 0u64;
        let mut recovered_total = 0u64;
        let mut recovery_cost_total = 0i64;
        let mut failures = 0u64;
        let mut repairs = 0u64;
        let mut recovery = Sample::new();
        // Time of the last repair still awaiting a zero-shed cycle.
        let mut pending_recovery: Option<f64> = None;

        // Byzantine bookkeeping, engaged only for plans that carry
        // misrouting events: the conformance detector runs its Dinic oracle
        // every scheduling cycle, so fail-stop-only runs skip it entirely
        // (and stay draw-for-draw identical to the pre-Byzantine simulator).
        let byzantine_mode = plan.has_byzantine();
        let nb = self.net.num_boxes();
        let mut detector = byzantine_mode.then(|| ConformanceDetector::new(nb));
        // Scheduling-cycle count at each box's misrouting onset (None =
        // currently honest), and which boxes the sim has quarantined.
        let mut onset_cycle: Vec<Option<u64>> = vec![None; if byzantine_mode { nb } else { 0 }];
        let mut quarantined = vec![false; if byzantine_mode { nb } else { 0 }];
        let mut misrouted = 0u64;
        let mut byz_flagged = 0u64;
        let mut byz_false_positives = 0u64;
        let mut detection = Sample::new();

        while let Some(ev) = heap.pop() {
            if ev.time > cfg.sim_time {
                break;
            }
            let now = ev.time;
            if now > cfg.warmup {
                let dt = now - last_t;
                busy_integral += dt * busy.iter().filter(|b| **b).count() as f64;
                queue_integral += dt * queue.iter().map(|q| q.len()).sum::<usize>() as f64;
                last_t = now;
            }
            match ev.kind {
                EventKind::Arrival { processor } => {
                    probe.add(Counter::Requests, batch as u64);
                    if probe.enabled() {
                        probe.event(now, rsin_obs::EventKind::Arrival, processor as u64, 0);
                    }
                    // One burst of `batch` tasks per event (batch 1 = the
                    // classic per-task Poisson stream, draw-for-draw). A
                    // task arriving at a full bounded queue is shed: it
                    // still consumes its type draw (so the stream behind it
                    // is unperturbed) but is never queued or scheduled.
                    for _ in 0..batch {
                        let ty = if cfg.types > 1 {
                            rng.random_range(0..cfg.types)
                        } else {
                            0
                        };
                        next_req += 1;
                        if cfg.queue_capacity > 0 && queue[processor].len() >= cfg.queue_capacity {
                            shed_arrivals += 1;
                            continue;
                        }
                        tracer.span(next_req, SpanPhase::Submit, processor as u64, ty as u64);
                        queue[processor].push_back((now, ty, next_req));
                    }
                    let next = now + exponential(&mut rng, gap_rate);
                    push(&mut heap, &mut seq, next, EventKind::Arrival { processor });
                }
                EventKind::TransmissionDone {
                    processor,
                    resource,
                    circuit,
                    arrived,
                    req,
                    ty,
                    delivered,
                } => {
                    cs.release(circuit).map_err(|error| SimError::Circuit {
                        context: "releasing a transmitted task's circuit",
                        error,
                    })?;
                    probe.add(Counter::Releases, 1);
                    tracer.span(req, SpanPhase::Release, processor as u64, resource as u64);
                    if probe.enabled() {
                        probe.event(
                            now,
                            rsin_obs::EventKind::Release,
                            processor as u64,
                            resource as u64,
                        );
                    }
                    transmitting[processor] = false;
                    if delivered {
                        let done = now + exponential(&mut rng, 1.0 / cfg.mean_service);
                        push(
                            &mut heap,
                            &mut seq,
                            done,
                            EventKind::ServiceDone { resource, arrived },
                        );
                    } else {
                        // A Byzantine box misrouted the circuit: nothing
                        // reached `resource` (it was never marked busy), and
                        // the task returns to the front of its queue to be
                        // retried with its original arrival time.
                        queue[processor].push_front((arrived, ty, req));
                    }
                }
                EventKind::ServiceDone { resource, arrived } => {
                    busy[resource] = false;
                    if now > cfg.warmup {
                        response.push(now - arrived);
                        completed += 1;
                    }
                }
                EventKind::Fault { index } => {
                    let fe = &plan.events()[index];
                    plan.apply_event(index, &mut cs);
                    match fe.action {
                        FaultAction::Fail => {
                            failures += 1;
                            probe.add(Counter::Faults, 1);
                        }
                        FaultAction::Repair => {
                            repairs += 1;
                            probe.add(Counter::Repairs, 1);
                            // Measure recovery from the *latest* repair.
                            pending_recovery = Some(now);
                        }
                    }
                    if let FaultTarget::ByzantineBox(b) = fe.target {
                        match fe.action {
                            // Onset stamps the cycle count so detection
                            // latency is measured in scheduling cycles.
                            FaultAction::Fail => onset_cycle[b] = Some(cycles),
                            FaultAction::Repair => {
                                onset_cycle[b] = None;
                                if let Some(det) = detector.as_mut() {
                                    det.reset_box(b);
                                }
                                // Lift any quarantine the detector imposed:
                                // the box is honest again.
                                if quarantined[b] {
                                    quarantined[b] = false;
                                    cs.repair_box(b);
                                }
                            }
                        }
                    }
                    if probe.enabled() {
                        // Operands: component index, and 0 = link / 1 = box
                        // / 2 = correlated domain / 3 = Byzantine box.
                        let (component, target_kind) = match fe.target {
                            FaultTarget::Link(l) => (l.index() as u64, 0),
                            FaultTarget::Box(b) => (b as u64, 1),
                            FaultTarget::Domain(d) => (d as u64, 2),
                            FaultTarget::ByzantineBox(b) => (b as u64, 3),
                        };
                        let kind = match fe.action {
                            FaultAction::Fail => rsin_obs::EventKind::Fault,
                            FaultAction::Repair => rsin_obs::EventKind::Repair,
                        };
                        probe.event(now, kind, component, target_kind);
                    }
                }
            }
            // Scheduling cycle whenever requests and resources coexist.
            let requests: Vec<ScheduleRequest> = (0..np)
                .filter(|&p| !transmitting[p])
                .filter_map(|p| {
                    // `front()` folds the non-empty check into the type
                    // lookup; a drained queue simply contributes no request.
                    queue[p].front().map(|&(_, ty, _)| ScheduleRequest {
                        processor: p,
                        priority: 1 + (p as u32) % levels,
                        resource_type: ty,
                    })
                })
                .collect();
            let free: Vec<FreeResource> = (0..nr)
                .filter(|&r| !busy[r])
                .map(|r| FreeResource {
                    resource: r,
                    preference: 1 + (r as u32) % levels,
                    resource_type: if cfg.types > 1 { r % cfg.types } else { 0 },
                })
                .collect();
            if requests.is_empty() || free.is_empty() {
                continue;
            }
            if probe.enabled() {
                let depth: usize = queue.iter().map(|q| q.len()).sum();
                probe.record(rsin_obs::Hist::QueueDepth, depth as u64);
            }
            let denom_requests = requests.len();
            let denom_free = free.len();
            let problem = ScheduleProblem {
                circuits: &cs,
                requests,
                free,
            };
            // Degraded-mode scheduling only while something is actually
            // faulty; fault-free cycles take the ordinary path so `run()`
            // (empty plan) stays bit-identical to the pre-fault simulator,
            // and all policies agree under an empty plan.
            let fail = |error: ScheduleError| SimError::Schedule {
                scheduler: scheduler.name(),
                error,
            };
            let (out, recovered, shed, recovery_cost) = if cs.faulty_count() > 0 {
                match policy {
                    DegradedPolicy::None => {
                        let out = scheduler
                            .try_schedule_observed(&problem, &mut scratch, probe)
                            .map_err(fail)?;
                        let shed = out.blocked.len() as u64;
                        (out, 0, shed, 0)
                    }
                    DegradedPolicy::Bfs => {
                        let d = scheduler
                            .try_schedule_degraded_observed(&problem, &mut scratch, probe)
                            .map_err(fail)?;
                        (
                            d.outcome,
                            d.recovered as u64,
                            d.shed as u64,
                            d.recovery_cost,
                        )
                    }
                    DegradedPolicy::Priced => {
                        let d = scheduler
                            .try_schedule_degraded_priced_observed(&problem, &mut scratch, probe)
                            .map_err(fail)?;
                        (
                            d.outcome,
                            d.recovered as u64,
                            d.shed as u64,
                            d.recovery_cost,
                        )
                    }
                }
            } else {
                let out = scheduler
                    .try_schedule_observed(&problem, &mut scratch, probe)
                    .map_err(fail)?;
                (out, 0, 0, 0)
            };
            debug_assert!(rsin_core::mapping::verify(&out.assignments, &problem).is_ok());
            // Differential conformance check (Byzantine runs only): the
            // Dinic oracle certifies this cycle's realized allocation on the
            // believed-healthy snapshot, failed deliveries accuse the boxes
            // on their paths, and boxes the detector flags are quarantined
            // below — after this cycle's establishments, since the scheduler
            // routed against the pre-quarantine state.
            let mut delivered_flags: Vec<bool> = Vec::new();
            let mut to_quarantine: Vec<usize> = Vec::new();
            if let Some(det) = detector.as_mut() {
                delivered_flags = out
                    .assignments
                    .iter()
                    .map(|a| cs.first_byzantine_on(&a.path).is_none())
                    .collect();
                let verdict = det.observe(&problem, &out.assignments, &delivered_flags);
                for &b in &verdict.newly_flagged {
                    byz_flagged += 1;
                    match onset_cycle[b] {
                        // This cycle is number `cycles + 1`; onset stamped
                        // the count completed before the lie began.
                        Some(c0) => detection.push((cycles + 1 - c0) as f64),
                        None => byz_false_positives += 1,
                    }
                    to_quarantine.push(b);
                }
            }
            drop(problem);
            cycles += 1;
            shed_total += shed;
            recovered_total += recovered;
            recovery_cost_total += recovery_cost;
            if probe.enabled() {
                if recovered > 0 {
                    probe.event(now, rsin_obs::EventKind::Recovered, recovered, 0);
                }
                if shed > 0 {
                    probe.event(now, rsin_obs::EventKind::Shed, shed, 0);
                }
            }
            if tracer.enabled() {
                if recovered > 0 {
                    tracer.span(0, SpanPhase::Recovered, recovered, 0);
                }
                if shed > 0 {
                    tracer.span(0, SpanPhase::Shed, shed, 0);
                }
            }
            if shed == 0 {
                if let Some(t0) = pending_recovery.take() {
                    recovery.push(now - t0);
                }
            }
            let denom = denom_requests.min(denom_free);
            if now > cfg.warmup && denom > 0 {
                blocking.push(out.blocking_fraction(denom));
            }
            allocations += out.assignments.len() as u64;
            for (i, a) in out.assignments.iter().enumerate() {
                let circuit = cs.establish(&a.path).map_err(|error| SimError::Circuit {
                    context: "establishing a scheduled circuit",
                    error,
                })?;
                let (arrived, ty, req) = queue[a.processor].pop_front().ok_or(SimError::State(
                    "assignment for a processor with an empty queue",
                ))?;
                tracer.span(
                    req,
                    SpanPhase::Allocate,
                    a.processor as u64,
                    a.resource as u64,
                );
                transmitting[a.processor] = true;
                // A misrouted circuit still holds its links until the
                // transmission times out, but nothing reaches the resource:
                // it stays free for honest traffic.
                let delivered = delivered_flags.get(i).copied().unwrap_or(true);
                if delivered {
                    busy[a.resource] = true;
                } else {
                    misrouted += 1;
                }
                let tx_done = now + exponential(&mut rng, 1.0 / cfg.mean_transmission);
                push(
                    &mut heap,
                    &mut seq,
                    tx_done,
                    EventKind::TransmissionDone {
                        processor: a.processor,
                        resource: a.resource,
                        circuit,
                        arrived,
                        req,
                        ty,
                        delivered,
                    },
                );
            }
            for b in to_quarantine {
                if !quarantined[b] {
                    quarantined[b] = true;
                    cs.fail_box(b);
                }
            }
        }
        let horizon = (cfg.sim_time - cfg.warmup).max(f64::MIN_POSITIVE);
        Ok(FaultedStats {
            stats: DynamicStats {
                utilization: busy_integral / horizon / nr as f64,
                mean_response: response.mean(),
                response_ci95: response.ci95_half_width(),
                response_p99: response.p99(),
                completed,
                mean_queue: queue_integral / horizon,
                cycles,
                mean_blocking: blocking.mean(),
                shed_arrivals,
                final_queue: queue.iter().map(|q| q.len() as u64).sum(),
                response,
            },
            allocations,
            shed_total,
            recovered_total,
            failures,
            repairs,
            mean_recovery: recovery.mean(),
            recoveries_observed: recovery.count(),
            transform_rebuilds: scratch.rebuilds(),
            recovery_cost: recovery_cost_total,
            misrouted,
            byz_flagged,
            byz_false_positives,
            mean_detection_cycles: detection.mean(),
            detections_observed: detection.count(),
        })
    }
}

/// Run one dynamic simulation per configuration, fanning the runs out over
/// `threads` scoped workers.
///
/// Each run is fully determined by its own `DynamicConfig` (seeded RNG, own
/// event heap, own circuit state), so results land in input order and are
/// bit-identical for any thread count. This is the batch path for load
/// sweeps (e.g. utilization vs arrival rate curves), where the runs are
/// embarrassingly parallel but each one reuses its scheduling scratch
/// across thousands of cycles.
pub fn run_sweep(
    net: &Network,
    scheduler: &dyn Scheduler,
    configs: &[DynamicConfig],
    threads: usize,
) -> Vec<DynamicStats> {
    crate::pool::run_indexed(configs.len(), threads, |i| {
        SystemSim::new(net, configs[i]).run(scheduler)
    })
}

/// Run `trials` independent faulted dynamic simulations, fanning them out
/// over `threads` scoped workers.
///
/// Trial `t` draws its arrivals from the `(cfg.seed, t)` RNG stream and its
/// fault plan from [`fault_plan_seed`]`(cfg.seed, t)`, so each trial is a
/// self-contained deterministic unit: results land in trial order and are
/// bit-identical for any thread count — the same convention as
/// [`run_sweep`] and the Monte-Carlo blocking experiments.
pub fn run_faulted_trials(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &DynamicConfig,
    fault_cfg: &FaultPlanConfig,
    trials: usize,
    threads: usize,
) -> Vec<FaultedStats> {
    run_faulted_trials_policy(
        net,
        scheduler,
        cfg,
        fault_cfg,
        trials,
        threads,
        DegradedPolicy::Bfs,
    )
}

/// [`run_faulted_trials`] with an explicit degraded-mode policy (see
/// [`DegradedPolicy`]); the unsuffixed entry is the [`DegradedPolicy::Bfs`]
/// special case. Same determinism contract: results land in trial order and
/// are bit-identical for any thread count.
pub fn run_faulted_trials_policy(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &DynamicConfig,
    fault_cfg: &FaultPlanConfig,
    trials: usize,
    threads: usize,
    policy: DegradedPolicy,
) -> Vec<FaultedStats> {
    crate::pool::run_indexed(trials, threads, |trial| {
        let plan = FaultPlan::generate(net, fault_cfg, fault_plan_seed(cfg.seed, trial as u64));
        SystemSim::new(net, *cfg).run_faulted_trial_policy(scheduler, &plan, trial as u64, policy)
    })
}

/// [`run_faulted_trials`] with every trial reporting into one shared
/// telemetry probe ([`Probe`] is `Sync`; a live `rsin_obs::Telemetry` sink
/// accumulates with relaxed atomics, so the aggregate counters are exact
/// while event interleaving across workers is wall-clock order). Statistics
/// stay bit-identical to the unobserved runs for any thread count.
pub fn run_faulted_trials_probed(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &DynamicConfig,
    fault_cfg: &FaultPlanConfig,
    trials: usize,
    threads: usize,
    probe: &dyn Probe,
) -> Vec<FaultedStats> {
    run_faulted_trials_policy_probed(
        net,
        scheduler,
        cfg,
        fault_cfg,
        trials,
        threads,
        DegradedPolicy::Bfs,
        probe,
    )
}

/// [`run_faulted_trials_policy`] with every trial reporting into one shared
/// telemetry probe (same contract as [`run_faulted_trials_probed`]).
#[allow(clippy::too_many_arguments)]
pub fn run_faulted_trials_policy_probed(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &DynamicConfig,
    fault_cfg: &FaultPlanConfig,
    trials: usize,
    threads: usize,
    policy: DegradedPolicy,
    probe: &dyn Probe,
) -> Vec<FaultedStats> {
    crate::pool::run_indexed(trials, threads, |trial| {
        let plan = FaultPlan::generate(net, fault_cfg, fault_plan_seed(cfg.seed, trial as u64));
        SystemSim::new(net, *cfg).run_faulted_trial_policy_probed(
            scheduler,
            &plan,
            trial as u64,
            policy,
            probe,
        )
    })
}

/// Which fault process drives a faulted trial (DESIGN §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// Independent per-link/per-box fail-stop renewal streams — the
    /// classic [`FaultPlan::generate`] model.
    Independent,
    /// Correlated fail-stop: per-stage power/packaging domains of
    /// switchboxes ([`FaultDomain::stage_power_domains`]) fail and repair
    /// as single events, with each domain's hazard scaled by the number of
    /// links it covers so the marginal per-link hazard matches
    /// [`FaultModel::Independent`] at the same configured rate.
    Correlated {
        /// Adjacent switching boxes per package, handed to
        /// [`FaultDomain::stage_power_domains`].
        domain_boxes: usize,
    },
    /// Byzantine misrouting: boxes lie instead of dying
    /// ([`FaultPlan::generate_byzantine`]; the config's box failure rate is
    /// the misrouting onset rate). Runs engage the differential
    /// conformance detector.
    Byzantine,
}

impl FaultModel {
    /// Stable lowercase name for CLI flags and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::Independent => "independent",
            FaultModel::Correlated { .. } => "correlated",
            FaultModel::Byzantine => "byzantine",
        }
    }
}

/// Build trial `trial`'s fault plan for `model` — the single plan-selection
/// point shared by [`run_faulted_trials_model`] and the experiment binaries,
/// so a CLI sweep and a test replaying one trial agree event-for-event.
pub fn plan_for_model(
    net: &Network,
    fault_cfg: &FaultPlanConfig,
    model: FaultModel,
    plan_seed: u64,
) -> FaultPlan {
    match model {
        FaultModel::Independent => FaultPlan::generate(net, fault_cfg, plan_seed),
        FaultModel::Correlated { domain_boxes } => {
            let domains = FaultDomain::stage_power_domains(net, domain_boxes);
            FaultPlan::generate_correlated(net, domains, fault_cfg, plan_seed)
                .expect("stage power domains reference only in-range components")
        }
        FaultModel::Byzantine => FaultPlan::generate_byzantine(net, fault_cfg, plan_seed),
    }
}

/// [`run_faulted_trials_policy`] under an explicit [`FaultModel`]; the
/// existing entry points are the [`FaultModel::Independent`] special case.
/// Same determinism contract: trial `t` draws its plan from
/// [`fault_plan_seed`]`(cfg.seed, t)` under the chosen model, results land
/// in trial order and are bit-identical for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_faulted_trials_model(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &DynamicConfig,
    fault_cfg: &FaultPlanConfig,
    trials: usize,
    threads: usize,
    policy: DegradedPolicy,
    model: FaultModel,
) -> Vec<FaultedStats> {
    crate::pool::run_indexed(trials, threads, |trial| {
        let plan = plan_for_model(
            net,
            fault_cfg,
            model,
            fault_plan_seed(cfg.seed, trial as u64),
        );
        SystemSim::new(net, *cfg).run_faulted_trial_policy(scheduler, &plan, trial as u64, policy)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler};
    use rsin_topology::builders::omega;

    #[test]
    fn light_load_completes_tasks() {
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.05,
            sim_time: 2000.0,
            ..DynamicConfig::default()
        };
        let stats = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        assert!(stats.completed > 100, "completed {}", stats.completed);
        assert!(stats.utilization > 0.0 && stats.utilization < 0.5);
        assert!(stats.mean_response > 0.0);
        assert!(stats.response_ci95 > 0.0 && stats.response_ci95 < stats.mean_response);
    }

    #[test]
    fn heavier_load_raises_utilization() {
        let net = omega(8).unwrap();
        let light = DynamicConfig {
            arrival_rate: 0.05,
            ..DynamicConfig::default()
        };
        let heavy = DynamicConfig {
            arrival_rate: 0.5,
            ..DynamicConfig::default()
        };
        let sim = SystemSim::new(&net, light);
        let u_light = sim.run(&MaxFlowScheduler::default()).utilization;
        let sim = SystemSim::new(&net, heavy);
        let u_heavy = sim.run(&MaxFlowScheduler::default()).utilization;
        assert!(u_heavy > u_light, "{u_heavy} vs {u_light}");
    }

    #[test]
    fn deterministic_given_seed() {
        let net = omega(8).unwrap();
        let cfg = DynamicConfig::default();
        let a = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let b = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cycles, b.cycles);
        assert!((a.mean_response - b.mean_response).abs() < 1e-12);
    }

    #[test]
    fn traced_faulted_run_is_bit_identical_and_spans_are_well_formed() {
        use rsin_obs::{validate_spans, FlightRecorder};
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.4,
            sim_time: 300.0,
            ..DynamicConfig::default()
        };
        let sim = SystemSim::new(&net, cfg);
        let fcfg = FaultPlanConfig::links(0.002, 30.0, cfg.sim_time);
        let plan = FaultPlan::generate(&net, &fcfg, fault_plan_seed(cfg.seed, 0));
        let scheduler = MaxFlowScheduler::default();
        let plain = sim
            .try_run_faulted_trial_policy_probed(
                &scheduler,
                &plan,
                0,
                DegradedPolicy::Bfs,
                &NoopProbe,
            )
            .unwrap();
        let recorder = FlightRecorder::new(1 << 20);
        let traced = sim
            .try_run_faulted_trial_policy_traced(
                &scheduler,
                &plan,
                0,
                DegradedPolicy::Bfs,
                &NoopProbe,
                &recorder,
            )
            .unwrap();
        assert_eq!(plain.stats.completed, traced.stats.completed);
        assert_eq!(plain.stats.cycles, traced.stats.cycles);
        assert_eq!(plain.allocations, traced.allocations);
        assert_eq!(plain.shed_total, traced.shed_total);
        assert!((plain.stats.mean_response - traced.stats.mean_response).abs() < 1e-12);

        let snap = recorder.snapshot();
        assert_eq!(snap.dropped, 0, "ring sized for the whole run");
        validate_spans(&snap.events).expect("span chains well-formed");
        let count = |phase| snap.events.iter().filter(|e| e.phase == phase).count() as u64;
        assert!(count(SpanPhase::Submit) > 100, "arrivals traced");
        assert_eq!(
            count(SpanPhase::Allocate),
            traced.allocations,
            "one allocate span per established circuit"
        );
        // Every release span closes an allocated task; transmissions still
        // in flight at the horizon stay open.
        assert!(count(SpanPhase::Release) <= traced.allocations);
        if traced.shed_total > 0 {
            assert!(count(SpanPhase::Shed) > 0, "degraded cycles marked");
        }
    }

    #[test]
    fn optimal_scheduler_never_worse_throughput_than_greedy() {
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.6,
            mean_service: 2.0,
            sim_time: 500.0,
            ..DynamicConfig::default()
        };
        let opt = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let heu = SystemSim::new(&net, cfg).run(&GreedyScheduler::default());
        // Same arrival stream (same seed): the optimal mapping can only
        // help utilization; allow small stochastic slack since decisions
        // diverge after the first cycle.
        assert!(opt.utilization >= heu.utilization * 0.9);
    }

    #[test]
    fn typed_workload_schedules_with_multicommodity() {
        use rsin_core::scheduler::MultiCommodityScheduler;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.3,
            sim_time: 80.0,
            warmup: 10.0,
            types: 2,
            ..DynamicConfig::default()
        };
        let stats = SystemSim::new(&net, cfg).run(&MultiCommodityScheduler::default());
        assert!(stats.completed > 30, "completed {}", stats.completed);
        assert!(stats.utilization > 0.05);
    }

    #[test]
    fn typed_load_is_harder_than_homogeneous() {
        // With k types, each request can only use 1/k of the pool, so
        // utilization at the same offered load must not be higher.
        let net = omega(8).unwrap();
        let base = DynamicConfig {
            arrival_rate: 0.6,
            sim_time: 120.0,
            warmup: 20.0,
            ..DynamicConfig::default()
        };
        let homo = SystemSim::new(&net, base).run(&MaxFlowScheduler::default());
        let typed_cfg = DynamicConfig { types: 4, ..base };
        let typed = SystemSim::new(&net, typed_cfg)
            .run(&rsin_core::scheduler::MultiCommodityScheduler::default());
        assert!(
            typed.mean_response >= homo.mean_response * 0.8,
            "typed {} vs homo {}",
            typed.mean_response,
            homo.mean_response
        );
    }

    #[test]
    fn sweep_matches_individual_runs_for_any_thread_count() {
        let net = omega(8).unwrap();
        let configs: Vec<DynamicConfig> = [0.05, 0.2, 0.4, 0.6, 0.8]
            .iter()
            .map(|&rate| DynamicConfig {
                arrival_rate: rate,
                sim_time: 150.0,
                warmup: 20.0,
                ..DynamicConfig::default()
            })
            .collect();
        let scheduler = MaxFlowScheduler::default();
        let serial = run_sweep(&net, &scheduler, &configs, 1);
        for threads in [2, 4, 8] {
            let parallel = run_sweep(&net, &scheduler, &configs, threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.completed, b.completed, "threads={threads}");
                assert_eq!(a.cycles, b.cycles, "threads={threads}");
                assert_eq!(
                    a.mean_response.to_bits(),
                    b.mean_response.to_bits(),
                    "threads={threads}"
                );
                assert_eq!(
                    a.utilization.to_bits(),
                    b.utilization.to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_plan_reports_fault_free_metrics() {
        let net = omega(8).unwrap();
        let cfg = DynamicConfig::default();
        let base = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let faulted = SystemSim::new(&net, cfg)
            .run_faulted(&MaxFlowScheduler::default(), &FaultPlan::empty());
        assert_eq!(base.completed, faulted.stats.completed);
        assert_eq!(base.cycles, faulted.stats.cycles);
        assert_eq!(
            base.mean_response.to_bits(),
            faulted.stats.mean_response.to_bits()
        );
        assert_eq!(faulted.failures, 0);
        assert_eq!(faulted.repairs, 0);
        assert_eq!(faulted.shed_total, 0);
        assert_eq!(faulted.recovered_total, 0);
        assert!(faulted.allocations >= faulted.stats.completed);
        assert_eq!(
            faulted.transform_rebuilds, 1,
            "one topology, one scheduler: exactly one transform build"
        );
    }

    #[test]
    fn mid_run_faults_patch_but_never_rebuild() {
        use rsin_topology::FaultPlanConfig;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.5,
            sim_time: 600.0,
            warmup: 50.0,
            ..DynamicConfig::default()
        };
        let fcfg = FaultPlanConfig::links(0.002, 30.0, cfg.sim_time);
        let plan = FaultPlan::generate(&net, &fcfg, fault_plan_seed(cfg.seed, 0));
        assert!(plan.failure_count() > 0, "plan must inject faults mid-run");
        let baseline = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let faulted = SystemSim::new(&net, cfg).run_faulted(&MaxFlowScheduler::default(), &plan);
        assert!(faulted.failures > 0);
        assert!(faulted.stats.completed > 0);
        // Survival: the faulted run still completes close to the baseline
        // count. (Not monotone: losing a link can reshuffle the queueing
        // dynamics enough to finish a handful *more* tasks, so bound the
        // ratio from both sides instead of asserting faulted <= baseline.)
        let survival = faulted.stats.completed as f64 / baseline.completed as f64;
        assert!(
            (0.5..=1.1).contains(&survival),
            "survival {survival}: faulted {} vs baseline {}",
            faulted.stats.completed,
            baseline.completed
        );
        // The acceptance bar of this subsystem: mid-run link failures are
        // capacity patches on the reusable transform, never rebuilds.
        assert_eq!(faulted.transform_rebuilds, 1);
    }

    #[test]
    fn faulted_trials_bit_identical_across_thread_counts() {
        use rsin_topology::FaultPlanConfig;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.4,
            sim_time: 200.0,
            warmup: 20.0,
            ..DynamicConfig::default()
        };
        let fcfg = FaultPlanConfig::links(0.003, 20.0, cfg.sim_time);
        let scheduler = MaxFlowScheduler::default();
        let serial = run_faulted_trials(&net, &scheduler, &cfg, &fcfg, 5, 1);
        assert_eq!(serial.len(), 5);
        for threads in [2, 4, 8] {
            let parallel = run_faulted_trials(&net, &scheduler, &cfg, &fcfg, 5, threads);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.stats.completed, b.stats.completed, "threads={threads}");
                assert_eq!(a.allocations, b.allocations, "threads={threads}");
                assert_eq!(a.shed_total, b.shed_total, "threads={threads}");
                assert_eq!(a.failures, b.failures, "threads={threads}");
                assert_eq!(
                    a.stats.mean_response.to_bits(),
                    b.stats.mean_response.to_bits(),
                    "threads={threads}"
                );
                assert_eq!(
                    a.mean_recovery.to_bits(),
                    b.mean_recovery.to_bits(),
                    "threads={threads}"
                );
            }
        }
        // Trials must actually differ (independent streams).
        assert!(
            serial
                .windows(2)
                .any(|w| w[0].stats.completed != w[1].stats.completed),
            "independent trials should diverge"
        );
    }

    #[test]
    fn repairs_are_followed_by_recovery() {
        use rsin_topology::FaultPlanConfig;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.6,
            sim_time: 800.0,
            warmup: 50.0,
            ..DynamicConfig::default()
        };
        // Heavy faulting with quick repairs so recovery intervals occur.
        let fcfg = FaultPlanConfig::links(0.004, 10.0, cfg.sim_time);
        let plan = FaultPlan::generate(&net, &fcfg, fault_plan_seed(cfg.seed, 1));
        let faulted =
            SystemSim::new(&net, cfg).run_faulted_trial(&MaxFlowScheduler::default(), &plan, 1);
        assert!(faulted.repairs > 0, "plan must include repairs");
        assert!(
            faulted.recoveries_observed > 0,
            "quick repairs under load must yield measurable recoveries"
        );
        assert!(faulted.mean_recovery >= 0.0);
        assert!(faulted.mean_recovery < cfg.sim_time);
    }

    #[test]
    fn degraded_policies_agree_on_empty_plan() {
        // The policy knob only takes effect while something is faulty, so
        // under an empty plan all three policies are bit-identical.
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.4,
            sim_time: 200.0,
            warmup: 20.0,
            priority_levels: 3,
            ..DynamicConfig::default()
        };
        let s = MaxFlowScheduler::default();
        let runs: Vec<FaultedStats> = [
            DegradedPolicy::None,
            DegradedPolicy::Bfs,
            DegradedPolicy::Priced,
        ]
        .iter()
        .map(|&p| SystemSim::new(&net, cfg).run_faulted_trial_policy(&s, &FaultPlan::empty(), 0, p))
        .collect();
        for w in runs.windows(2) {
            assert_eq!(w[0].stats.completed, w[1].stats.completed);
            assert_eq!(w[0].stats.cycles, w[1].stats.cycles);
            assert_eq!(
                w[0].stats.mean_response.to_bits(),
                w[1].stats.mean_response.to_bits()
            );
        }
        assert!(runs.iter().all(|r| r.recovery_cost == 0));
    }

    #[test]
    fn priced_policy_bit_identical_across_thread_counts() {
        use rsin_core::scheduler::AddressMappedScheduler;
        use rsin_topology::FaultPlanConfig;
        // Address mapping binds blind, so faulty cycles actually exercise
        // the residual min-cost recovery; the result must still be
        // bit-identical for any worker count.
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.5,
            sim_time: 200.0,
            warmup: 20.0,
            priority_levels: 4,
            ..DynamicConfig::default()
        };
        let fcfg = FaultPlanConfig::links(0.004, 15.0, cfg.sim_time);
        let scheduler = AddressMappedScheduler::new(7);
        let serial =
            run_faulted_trials_policy(&net, &scheduler, &cfg, &fcfg, 5, 1, DegradedPolicy::Priced);
        for threads in [2, 8] {
            let parallel = run_faulted_trials_policy(
                &net,
                &scheduler,
                &cfg,
                &fcfg,
                5,
                threads,
                DegradedPolicy::Priced,
            );
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.stats.completed, b.stats.completed, "threads={threads}");
                assert_eq!(a.recovery_cost, b.recovery_cost, "threads={threads}");
                assert_eq!(a.recovered_total, b.recovered_total, "threads={threads}");
                assert_eq!(
                    a.stats.mean_response.to_bits(),
                    b.stats.mean_response.to_bits(),
                    "threads={threads}"
                );
            }
        }
        assert!(
            serial.iter().all(|r| r.recovery_cost >= 0),
            "recovery cost is a sum of nonnegative per-cycle costs"
        );
    }

    #[test]
    fn priority_levels_one_matches_unpriced_run() {
        // levels == 1 must be bit-identical to the pre-knob simulator
        // (priority/preference all collapse to 1 with no extra RNG draws).
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.4,
            sim_time: 150.0,
            warmup: 20.0,
            ..DynamicConfig::default()
        };
        assert_eq!(cfg.priority_levels, 1);
        let a = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let leveled = DynamicConfig {
            priority_levels: 5,
            ..cfg
        };
        let b = SystemSim::new(&net, leveled).run(&MaxFlowScheduler::default());
        // Max-flow ignores prices entirely, so even with levels > 1 the
        // decision sequence (and hence all dynamics) is unchanged.
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
    }

    #[test]
    fn rho_knob_reproduces_explicit_rate_bit_identically() {
        // ρ targeting is only a different way of *stating* the arrival
        // rate: on omega-8 with a 1.0 mean hold time, ρ = 0.25 derives the
        // rate 0.25 exactly, so the run must be bit-identical to spelling
        // the rate out (same draws, same events, same statistics).
        let net = omega(8).unwrap();
        let explicit = DynamicConfig {
            arrival_rate: 0.25,
            mean_transmission: 0.5,
            mean_service: 0.5,
            sim_time: 400.0,
            warmup: 40.0,
            ..DynamicConfig::default()
        };
        let targeted = DynamicConfig {
            arrival_rate: 999.0, // must be ignored once rho is set
            rho: 0.25,
            ..explicit
        };
        assert_eq!(targeted.effective_arrival_rate(8, 8), 0.25);
        let a = SystemSim::new(&net, explicit).run(&MaxFlowScheduler::default());
        let b = SystemSim::new(&net, targeted).run(&MaxFlowScheduler::default());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        assert_eq!(a.shed_arrivals, 0);
        assert_eq!(b.shed_arrivals, 0);
    }

    #[test]
    fn heavy_traffic_queue_grows_with_rho() {
        // The heavy-traffic acceptance signal: mean queue depth is monotone
        // in ρ across the near/past-saturation ladder, and past saturation
        // the horizon-end backlog dwarfs the sub-critical one.
        let net = omega(8).unwrap();
        let rhos = [0.9, 0.95, 0.99, 1.05];
        let runs: Vec<DynamicStats> = rhos
            .iter()
            .map(|&rho| {
                let cfg = DynamicConfig {
                    rho,
                    sim_time: 2000.0,
                    warmup: 100.0,
                    ..DynamicConfig::default()
                };
                SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default())
            })
            .collect();
        for (w, pair) in runs.windows(2).enumerate() {
            assert!(
                pair[1].mean_queue >= pair[0].mean_queue,
                "queue not monotone: rho {} gave {}, rho {} gave {}",
                rhos[w],
                pair[0].mean_queue,
                rhos[w + 1],
                pair[1].mean_queue
            );
        }
        assert!(
            runs[3].final_queue > runs[0].final_queue.saturating_mul(2),
            "past saturation the backlog must blow up: {} vs {}",
            runs[3].final_queue,
            runs[0].final_queue
        );
    }

    #[test]
    fn bounded_queue_sheds_only_past_saturation() {
        let net = omega(8).unwrap();
        let base = DynamicConfig {
            queue_capacity: 32,
            sim_time: 2000.0,
            warmup: 100.0,
            ..DynamicConfig::default()
        };
        let calm = SystemSim::new(&net, DynamicConfig { rho: 0.7, ..base })
            .run(&MaxFlowScheduler::default());
        assert_eq!(
            calm.shed_arrivals, 0,
            "a 32-deep bound must never fill at rho 0.7"
        );
        let hot = SystemSim::new(&net, DynamicConfig { rho: 1.05, ..base })
            .run(&MaxFlowScheduler::default());
        assert!(
            hot.shed_arrivals > 0,
            "past saturation the bounded queue must overflow"
        );
        assert!(hot.completed > 0, "shedding must not stall the system");
        // The bound caps the backlog the unbounded run would accumulate.
        assert!(hot.final_queue <= 32 * 8);
    }

    #[test]
    fn batch_arrivals_hold_offered_load() {
        // Batching changes the arrival *pattern*, not the offered load: the
        // burst size stretches the inter-burst gap by the same factor, so
        // long-run throughput stays in the same band.
        let net = omega(8).unwrap();
        let base = DynamicConfig {
            rho: 0.6,
            sim_time: 3000.0,
            warmup: 200.0,
            ..DynamicConfig::default()
        };
        let smooth = SystemSim::new(&net, base).run(&MaxFlowScheduler::default());
        let bursty = SystemSim::new(
            &net,
            DynamicConfig {
                batch_size: 4,
                ..base
            },
        )
        .run(&MaxFlowScheduler::default());
        let ratio = bursty.completed as f64 / smooth.completed as f64;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "throughput drifted under batching: {} vs {}",
            bursty.completed,
            smooth.completed
        );
        // Bursts queue behind one-at-a-time transmission, so waiting can
        // only get worse.
        assert!(bursty.mean_queue >= smooth.mean_queue);
    }

    #[test]
    fn conservation_no_tasks_lost() {
        // Completed tasks never exceed arrivals (sanity on bookkeeping).
        let net = omega(4).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.3,
            sim_time: 300.0,
            warmup: 0.0,
            ..DynamicConfig::default()
        };
        let stats = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let arrivals_upper = (0.3 * 4.0 * 300.0 * 2.0) as u64;
        assert!(stats.completed < arrivals_upper);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn independent_model_reproduces_legacy_entry_point_bit_for_bit() {
        use rsin_topology::FaultPlanConfig;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.4,
            sim_time: 200.0,
            warmup: 20.0,
            ..DynamicConfig::default()
        };
        let fcfg = FaultPlanConfig::links(0.003, 20.0, cfg.sim_time);
        let scheduler = MaxFlowScheduler::default();
        let legacy =
            run_faulted_trials_policy(&net, &scheduler, &cfg, &fcfg, 3, 1, DegradedPolicy::Bfs);
        let model = run_faulted_trials_model(
            &net,
            &scheduler,
            &cfg,
            &fcfg,
            3,
            2,
            DegradedPolicy::Bfs,
            FaultModel::Independent,
        );
        for (a, b) in legacy.iter().zip(&model) {
            assert_eq!(a.stats.completed, b.stats.completed);
            assert_eq!(a.failures, b.failures);
            assert_eq!(
                a.stats.mean_response.to_bits(),
                b.stats.mean_response.to_bits()
            );
            assert_eq!(a.misrouted, 0);
            assert_eq!(b.misrouted, 0);
        }
    }

    #[test]
    fn correlated_domain_trials_patch_only_and_bit_identical_across_threads() {
        use rsin_topology::FaultPlanConfig;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.5,
            sim_time: 400.0,
            warmup: 40.0,
            ..DynamicConfig::default()
        };
        let fcfg = FaultPlanConfig::links(0.01, 25.0, cfg.sim_time);
        let scheduler = MaxFlowScheduler::default();
        let model = FaultModel::Correlated { domain_boxes: 2 };
        let serial = run_faulted_trials_model(
            &net,
            &scheduler,
            &cfg,
            &fcfg,
            4,
            1,
            DegradedPolicy::Bfs,
            model,
        );
        assert!(
            serial.iter().any(|s| s.failures > 0),
            "correlated plans must inject domain failures"
        );
        for s in &serial {
            // Domain events flow through the incremental patch path: one
            // rebuild for the transformation shape, none for the faults.
            assert_eq!(s.transform_rebuilds, 1);
            assert_eq!(s.misrouted, 0, "correlated faults are fail-stop");
            assert_eq!(s.byz_flagged, 0, "detector must stay disengaged");
        }
        for threads in [2, 8] {
            let parallel = run_faulted_trials_model(
                &net,
                &scheduler,
                &cfg,
                &fcfg,
                4,
                threads,
                DegradedPolicy::Bfs,
                model,
            );
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.stats.completed, b.stats.completed, "threads={threads}");
                assert_eq!(a.failures, b.failures, "threads={threads}");
                assert_eq!(a.shed_total, b.shed_total, "threads={threads}");
                assert_eq!(
                    a.stats.mean_response.to_bits(),
                    b.stats.mean_response.to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn byzantine_boxes_misroute_until_detected_and_quarantined() {
        use rsin_topology::FaultPlanConfig;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.5,
            sim_time: 400.0,
            warmup: 40.0,
            ..DynamicConfig::default()
        };
        let fcfg = FaultPlanConfig {
            link_failure_rate: 0.0,
            box_failure_rate: 0.002,
            mean_repair: 80.0,
            horizon: cfg.sim_time,
        };
        let scheduler = MaxFlowScheduler::default();
        let plan = plan_for_model(
            &net,
            &fcfg,
            FaultModel::Byzantine,
            fault_plan_seed(cfg.seed, 0),
        );
        assert!(plan.has_byzantine() && plan.failure_count() > 0);
        let run = SystemSim::new(&net, cfg).run_faulted_trial_policy(
            &scheduler,
            &plan,
            0,
            DegradedPolicy::Bfs,
        );
        // The lie manifests: circuits establish but fail to deliver…
        assert!(run.misrouted > 0, "no circuit was ever misrouted");
        // …and the differential detector catches the liar with repeat
        // evidence, never before the flagging threshold allows.
        assert!(run.byz_flagged > 0, "no box was ever flagged");
        assert!(run.detections_observed > 0);
        assert!(
            run.mean_detection_cycles >= rsin_core::conformance::FLAG_THRESHOLD as f64,
            "detection latency {} under threshold",
            run.mean_detection_cycles
        );
        // Tasks survive: misrouted transmissions re-queue and retry once the
        // liar is quarantined, so the run still completes work.
        assert!(run.stats.completed > 0);
    }

    #[test]
    fn byzantine_trials_bit_identical_across_thread_counts() {
        use rsin_topology::FaultPlanConfig;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.4,
            sim_time: 300.0,
            warmup: 30.0,
            ..DynamicConfig::default()
        };
        let fcfg = FaultPlanConfig {
            link_failure_rate: 0.0,
            box_failure_rate: 0.002,
            mean_repair: 60.0,
            horizon: cfg.sim_time,
        };
        let scheduler = MaxFlowScheduler::default();
        let serial = run_faulted_trials_model(
            &net,
            &scheduler,
            &cfg,
            &fcfg,
            4,
            1,
            DegradedPolicy::Bfs,
            FaultModel::Byzantine,
        );
        assert!(serial.iter().any(|s| s.misrouted > 0));
        for threads in [2, 8] {
            let parallel = run_faulted_trials_model(
                &net,
                &scheduler,
                &cfg,
                &fcfg,
                4,
                threads,
                DegradedPolicy::Bfs,
                FaultModel::Byzantine,
            );
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.misrouted, b.misrouted, "threads={threads}");
                assert_eq!(a.byz_flagged, b.byz_flagged, "threads={threads}");
                assert_eq!(a.stats.completed, b.stats.completed, "threads={threads}");
                assert_eq!(
                    a.mean_detection_cycles.to_bits(),
                    b.mean_detection_cycles.to_bits(),
                    "threads={threads}"
                );
            }
        }
    }
}
