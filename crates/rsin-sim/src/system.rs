//! Dynamic discrete-event simulation of the full resource-sharing system
//! (Section II model, points 1–5).
//!
//! * Tasks arrive at each processor as a Poisson process and queue there;
//!   a processor transmits **one task at a time** (model point 5).
//! * When pending requests and free resources coexist, a scheduling cycle
//!   runs (any [`Scheduler`]), establishing circuits for the allocated
//!   requests; blocked requests stay queued for the next cycle.
//! * The circuit is **released once the task has been transmitted**; the
//!   resource stays busy until the task completes (point 5), modelling why
//!   circuit switching beats packet switching here (point 1: "a task cannot
//!   be processed until it is completely received").
//!
//! Outputs: resource utilization, task response time, queue lengths, and
//! per-cycle blocking — the performance indexes the paper's scheduling
//! objective optimizes.

use crate::metrics::Sample;
use crate::workload::{exponential, trial_rng};
use rand::rngs::StdRng;
use rand::Rng;
use rsin_core::model::{FreeResource, ScheduleProblem, ScheduleRequest};
use rsin_core::scheduler::{ScheduleScratch, Scheduler};
use rsin_topology::{CircuitId, CircuitState, Network};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Parameters of a dynamic simulation.
#[derive(Debug, Clone, Copy)]
pub struct DynamicConfig {
    /// Task arrival rate per processor (Poisson).
    pub arrival_rate: f64,
    /// Mean task transmission time (exponential; circuit held this long).
    pub mean_transmission: f64,
    /// Mean resource service time (exponential; resource busy this long
    /// after transmission completes).
    pub mean_service: f64,
    /// Simulated time horizon.
    pub sim_time: f64,
    /// Statistics ignore events before this time (warm-up).
    pub warmup: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of resource types (1 = homogeneous). Resource `r` has type
    /// `r % types`; each arriving task draws a uniform type, so the offered
    /// load is balanced across types.
    pub types: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            arrival_rate: 0.1,
            mean_transmission: 0.2,
            mean_service: 1.0,
            sim_time: 1000.0,
            warmup: 100.0,
            seed: 1,
            types: 1,
        }
    }
}

/// Aggregate results of a dynamic run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicStats {
    /// Mean fraction of resources busy (post-warmup time average).
    pub utilization: f64,
    /// Mean task response time (arrival → service completion).
    pub mean_response: f64,
    /// 95 % confidence half-width of the response-time mean.
    pub response_ci95: f64,
    /// Tasks completed after warm-up.
    pub completed: u64,
    /// Time-averaged number of queued (unallocated) tasks.
    pub mean_queue: f64,
    /// Scheduling cycles executed.
    pub cycles: u64,
    /// Mean per-cycle blocking fraction (cycles with contention only).
    pub mean_blocking: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival {
        processor: usize,
    },
    TransmissionDone {
        processor: usize,
        resource: usize,
        circuit: CircuitId,
        arrived: f64,
    },
    ServiceDone {
        resource: usize,
        arrived: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The dynamic simulator. One instance per (network, config) pair.
pub struct SystemSim<'n> {
    net: &'n Network,
    cfg: DynamicConfig,
}

impl<'n> SystemSim<'n> {
    /// Create a simulator.
    pub fn new(net: &'n Network, cfg: DynamicConfig) -> Self {
        SystemSim { net, cfg }
    }

    /// Run to the horizon under the given scheduler.
    pub fn run(&self, scheduler: &dyn Scheduler) -> DynamicStats {
        let cfg = &self.cfg;
        let mut rng: StdRng = trial_rng(cfg.seed, 0);
        let np = self.net.num_processors();
        let nr = self.net.num_resources();

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
            *seq += 1;
            heap.push(Event {
                time,
                seq: *seq,
                kind,
            });
        };
        for p in 0..np {
            let t = exponential(&mut rng, cfg.arrival_rate);
            push(&mut heap, &mut seq, t, EventKind::Arrival { processor: p });
        }

        let mut cs = CircuitState::new(self.net);
        // One scratch for the whole run: every scheduling cycle reuses the
        // same transformation graph and solver buffers (the topology never
        // changes mid-run).
        let mut scratch = ScheduleScratch::new();
        // Each queued task is (arrival time, resource type).
        let mut queue: Vec<VecDeque<(f64, usize)>> = vec![VecDeque::new(); np];
        let mut transmitting = vec![false; np];
        let mut busy = vec![false; nr];

        let mut busy_integral = 0.0;
        let mut queue_integral = 0.0;
        let mut last_t = cfg.warmup;
        let mut response = Sample::new();
        let mut blocking = Sample::new();
        let mut completed = 0u64;
        let mut cycles = 0u64;

        while let Some(ev) = heap.pop() {
            if ev.time > cfg.sim_time {
                break;
            }
            let now = ev.time;
            if now > cfg.warmup {
                let dt = now - last_t;
                busy_integral += dt * busy.iter().filter(|b| **b).count() as f64;
                queue_integral += dt * queue.iter().map(|q| q.len()).sum::<usize>() as f64;
                last_t = now;
            }
            match ev.kind {
                EventKind::Arrival { processor } => {
                    let ty = if cfg.types > 1 {
                        rng.random_range(0..cfg.types)
                    } else {
                        0
                    };
                    queue[processor].push_back((now, ty));
                    let next = now + exponential(&mut rng, cfg.arrival_rate);
                    push(&mut heap, &mut seq, next, EventKind::Arrival { processor });
                }
                EventKind::TransmissionDone {
                    processor,
                    resource,
                    circuit,
                    arrived,
                } => {
                    cs.release(circuit).expect("live circuit");
                    transmitting[processor] = false;
                    let done = now + exponential(&mut rng, 1.0 / cfg.mean_service);
                    push(
                        &mut heap,
                        &mut seq,
                        done,
                        EventKind::ServiceDone { resource, arrived },
                    );
                }
                EventKind::ServiceDone { resource, arrived } => {
                    busy[resource] = false;
                    if now > cfg.warmup {
                        response.push(now - arrived);
                        completed += 1;
                    }
                }
            }
            // Scheduling cycle whenever requests and resources coexist.
            let requests: Vec<ScheduleRequest> = (0..np)
                .filter(|&p| !queue[p].is_empty() && !transmitting[p])
                .map(|p| ScheduleRequest {
                    processor: p,
                    priority: 1,
                    resource_type: queue[p].front().unwrap().1,
                })
                .collect();
            let free: Vec<FreeResource> = (0..nr)
                .filter(|&r| !busy[r])
                .map(|r| FreeResource {
                    resource: r,
                    preference: 1,
                    resource_type: if cfg.types > 1 { r % cfg.types } else { 0 },
                })
                .collect();
            if requests.is_empty() || free.is_empty() {
                continue;
            }
            let denom_requests = requests.len();
            let denom_free = free.len();
            let problem = ScheduleProblem {
                circuits: &cs,
                requests,
                free,
            };
            let out = scheduler.schedule_reusing(&problem, &mut scratch);
            debug_assert!(rsin_core::mapping::verify(&out.assignments, &problem).is_ok());
            drop(problem);
            cycles += 1;
            let denom = denom_requests.min(denom_free);
            if now > cfg.warmup && denom > 0 {
                blocking.push(out.blocking_fraction(denom));
            }
            for a in &out.assignments {
                let circuit = cs.establish(&a.path).expect("scheduler paths are free");
                let (arrived, _ty) = queue[a.processor].pop_front().expect("had a task");
                transmitting[a.processor] = true;
                busy[a.resource] = true;
                let tx_done = now + exponential(&mut rng, 1.0 / cfg.mean_transmission);
                push(
                    &mut heap,
                    &mut seq,
                    tx_done,
                    EventKind::TransmissionDone {
                        processor: a.processor,
                        resource: a.resource,
                        circuit,
                        arrived,
                    },
                );
            }
        }
        let horizon = (cfg.sim_time - cfg.warmup).max(f64::MIN_POSITIVE);
        DynamicStats {
            utilization: busy_integral / horizon / nr as f64,
            mean_response: response.mean(),
            response_ci95: response.ci95_half_width(),
            completed,
            mean_queue: queue_integral / horizon,
            cycles,
            mean_blocking: blocking.mean(),
        }
    }
}

/// Run one dynamic simulation per configuration, fanning the runs out over
/// `threads` scoped workers.
///
/// Each run is fully determined by its own `DynamicConfig` (seeded RNG, own
/// event heap, own circuit state), so results land in input order and are
/// bit-identical for any thread count. This is the batch path for load
/// sweeps (e.g. utilization vs arrival rate curves), where the runs are
/// embarrassingly parallel but each one reuses its scheduling scratch
/// across thousands of cycles.
pub fn run_sweep(
    net: &Network,
    scheduler: &dyn Scheduler,
    configs: &[DynamicConfig],
    threads: usize,
) -> Vec<DynamicStats> {
    let threads = threads.max(1);
    let mut results: Vec<Option<DynamicStats>> = vec![None; configs.len()];
    if threads == 1 || configs.len() <= 1 {
        for (slot, cfg) in results.iter_mut().zip(configs) {
            *slot = Some(SystemSim::new(net, *cfg).run(scheduler));
        }
    } else {
        let chunk = configs.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (slots, cfgs) in results.chunks_mut(chunk).zip(configs.chunks(chunk)) {
                s.spawn(move || {
                    for (slot, cfg) in slots.iter_mut().zip(cfgs) {
                        *slot = Some(SystemSim::new(net, *cfg).run(scheduler));
                    }
                });
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every config simulated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler};
    use rsin_topology::builders::omega;

    #[test]
    fn light_load_completes_tasks() {
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.05,
            sim_time: 2000.0,
            ..DynamicConfig::default()
        };
        let stats = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        assert!(stats.completed > 100, "completed {}", stats.completed);
        assert!(stats.utilization > 0.0 && stats.utilization < 0.5);
        assert!(stats.mean_response > 0.0);
        assert!(stats.response_ci95 > 0.0 && stats.response_ci95 < stats.mean_response);
    }

    #[test]
    fn heavier_load_raises_utilization() {
        let net = omega(8).unwrap();
        let light = DynamicConfig {
            arrival_rate: 0.05,
            ..DynamicConfig::default()
        };
        let heavy = DynamicConfig {
            arrival_rate: 0.5,
            ..DynamicConfig::default()
        };
        let sim = SystemSim::new(&net, light);
        let u_light = sim.run(&MaxFlowScheduler::default()).utilization;
        let sim = SystemSim::new(&net, heavy);
        let u_heavy = sim.run(&MaxFlowScheduler::default()).utilization;
        assert!(u_heavy > u_light, "{u_heavy} vs {u_light}");
    }

    #[test]
    fn deterministic_given_seed() {
        let net = omega(8).unwrap();
        let cfg = DynamicConfig::default();
        let a = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let b = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cycles, b.cycles);
        assert!((a.mean_response - b.mean_response).abs() < 1e-12);
    }

    #[test]
    fn optimal_scheduler_never_worse_throughput_than_greedy() {
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.6,
            mean_service: 2.0,
            sim_time: 500.0,
            ..DynamicConfig::default()
        };
        let opt = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let heu = SystemSim::new(&net, cfg).run(&GreedyScheduler::default());
        // Same arrival stream (same seed): the optimal mapping can only
        // help utilization; allow small stochastic slack since decisions
        // diverge after the first cycle.
        assert!(opt.utilization >= heu.utilization * 0.9);
    }

    #[test]
    fn typed_workload_schedules_with_multicommodity() {
        use rsin_core::scheduler::MultiCommodityScheduler;
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.3,
            sim_time: 80.0,
            warmup: 10.0,
            types: 2,
            ..DynamicConfig::default()
        };
        let stats = SystemSim::new(&net, cfg).run(&MultiCommodityScheduler::default());
        assert!(stats.completed > 30, "completed {}", stats.completed);
        assert!(stats.utilization > 0.05);
    }

    #[test]
    fn typed_load_is_harder_than_homogeneous() {
        // With k types, each request can only use 1/k of the pool, so
        // utilization at the same offered load must not be higher.
        let net = omega(8).unwrap();
        let base = DynamicConfig {
            arrival_rate: 0.6,
            sim_time: 120.0,
            warmup: 20.0,
            ..DynamicConfig::default()
        };
        let homo = SystemSim::new(&net, base).run(&MaxFlowScheduler::default());
        let typed_cfg = DynamicConfig { types: 4, ..base };
        let typed = SystemSim::new(&net, typed_cfg)
            .run(&rsin_core::scheduler::MultiCommodityScheduler::default());
        assert!(
            typed.mean_response >= homo.mean_response * 0.8,
            "typed {} vs homo {}",
            typed.mean_response,
            homo.mean_response
        );
    }

    #[test]
    fn sweep_matches_individual_runs_for_any_thread_count() {
        let net = omega(8).unwrap();
        let configs: Vec<DynamicConfig> = [0.05, 0.2, 0.4, 0.6, 0.8]
            .iter()
            .map(|&rate| DynamicConfig {
                arrival_rate: rate,
                sim_time: 150.0,
                warmup: 20.0,
                ..DynamicConfig::default()
            })
            .collect();
        let scheduler = MaxFlowScheduler::default();
        let serial = run_sweep(&net, &scheduler, &configs, 1);
        for threads in [2, 4, 8] {
            let parallel = run_sweep(&net, &scheduler, &configs, threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.completed, b.completed, "threads={threads}");
                assert_eq!(a.cycles, b.cycles, "threads={threads}");
                assert_eq!(
                    a.mean_response.to_bits(),
                    b.mean_response.to_bits(),
                    "threads={threads}"
                );
                assert_eq!(
                    a.utilization.to_bits(),
                    b.utilization.to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn conservation_no_tasks_lost() {
        // Completed tasks never exceed arrivals (sanity on bookkeeping).
        let net = omega(4).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: 0.3,
            sim_time: 300.0,
            warmup: 0.0,
            ..DynamicConfig::default()
        };
        let stats = SystemSim::new(&net, cfg).run(&MaxFlowScheduler::default());
        let arrivals_upper = (0.3 * 4.0 * 300.0 * 2.0) as u64;
        assert!(stats.completed < arrivals_upper);
        assert!(stats.cycles > 0);
    }
}
