//! Replicated dynamic runs: independent `(seed, replica)` RNG-stream
//! simulations of *one* configuration, merged deterministically.
//!
//! A single long dynamic simulation was the last serial surface of the
//! experiment grid (ROADMAP item 3): load sweeps parallelize across
//! configurations, blocking experiments across trials, but one
//! `(network, scheduler, config)` point ran on one core no matter how long
//! the horizon. Replication is the standard fix from parallel
//! discrete-event simulation practice: run `replicas` statistically
//! independent copies of the model — replica `r` draws its arrivals from
//! the `(cfg.seed, r)` stream, exactly the `(seed, trial)` convention every
//! other experiment here uses — and pool their outputs.
//!
//! Determinism contract (the same one PR 1 established for blocking
//! trials): replicas land in an index-addressed slot table and the merge
//! runs **sequentially in replica order** after every replica finishes.
//! [`Sample::merge`] keeps counts, extremes, histogram buckets — hence p99
//! — exactly equal to the single-stream computation, and fixes the
//! floating-point evaluation order of the pooled mean/CI, so the returned
//! statistics are bit-identical for any thread count. A property test in
//! `tests/replication.rs` pins that, and the CI `determinism` job
//! byte-compares the exported JSON across thread counts.

use crate::metrics::{Sample, Summary};
use crate::system::{DynamicConfig, DynamicStats, FaultedStats, SystemSim};
use rsin_core::scheduler::Scheduler;
use rsin_obs::{Telemetry, TelemetryReport};
use rsin_topology::{FaultPlan, FaultPlanConfig, Network};

/// Pooled statistics of `replicas` independent dynamic runs.
#[derive(Debug, Clone, Copy)]
pub struct ReplicatedStats {
    /// How many replicas were merged.
    pub replicas: u64,
    /// Task-level response time pooled across replicas: per-replica
    /// [`DynamicStats::response`] samples merged in replica order, so the
    /// mean/CI weight every completed task equally and the p99 reads the
    /// combined histogram.
    pub response: Summary,
    /// Across-replica distribution of per-replica utilization (each replica
    /// contributes one observation; the CI measures replica-to-replica
    /// variability, the classic replication/deletion estimate).
    pub utilization: Summary,
    /// Across-replica distribution of per-replica mean queue length.
    pub mean_queue: Summary,
    /// Across-replica distribution of per-replica mean cycle blocking.
    pub mean_blocking: Summary,
    /// Tasks completed after warm-up, summed over replicas.
    pub completed: u64,
    /// Scheduling cycles executed, summed over replicas.
    pub cycles: u64,
    /// Arrivals dropped at a full bounded queue, summed over replicas
    /// (always 0 with [`DynamicConfig::queue_capacity`] 0).
    pub shed_arrivals: u64,
    /// Across-replica distribution of the horizon-end queue backlog
    /// ([`DynamicStats::final_queue`]) — the heavy-traffic queue-growth
    /// signal.
    pub final_queue: Summary,
}

/// Pooled survival metrics of `replicas` independent faulted runs.
#[derive(Debug, Clone, Copy)]
pub struct ReplicatedFaultedStats {
    /// The pooled ordinary statistics.
    pub stats: ReplicatedStats,
    /// Circuits established, summed over replicas.
    pub allocations: u64,
    /// Requests shed by degraded cycles, summed over replicas.
    pub shed_total: u64,
    /// Blocked requests rescued by the alternate-path retry, summed.
    pub recovered_total: u64,
    /// `Fail` events applied, summed over replicas.
    pub failures: u64,
    /// `Repair` events applied, summed over replicas.
    pub repairs: u64,
    /// Mean repair→recovery interval, weighted by each replica's
    /// `recoveries_observed` (0 if none observed anywhere).
    pub mean_recovery: f64,
    /// Total repair→zero-shed intervals observed across replicas.
    pub recoveries_observed: u64,
    /// Transformation-graph rebuilds, summed over replicas (one per replica
    /// per transformation shape used; faults never add to it).
    pub transform_rebuilds: u64,
    /// Transformation-2 cost added by degraded-mode recoveries, summed over
    /// replicas (the cost of degradation; see
    /// [`FaultedStats::recovery_cost`]).
    pub recovery_cost: i64,
    /// Circuits misrouted by Byzantine boxes, summed over replicas.
    pub misrouted: u64,
    /// Boxes flagged by the conformance detector, summed over replicas.
    pub byz_flagged: u64,
    /// Honest boxes flagged (expected 0), summed over replicas.
    pub byz_false_positives: u64,
    /// Mean onset→flag latency in scheduling cycles, weighted by each
    /// replica's `detections_observed` (0 if none observed anywhere).
    pub mean_detection_cycles: f64,
    /// Total true detections across replicas.
    pub detections_observed: u64,
}

/// Merge per-replica [`DynamicStats`] in slice (= replica) order.
///
/// Pure and deterministic: same slice, same bits out. Runs after the
/// parallel phase, so thread count cannot influence it.
pub fn merge_dynamic(per_replica: &[DynamicStats]) -> ReplicatedStats {
    let mut response = Sample::new();
    let mut utilization = Sample::new();
    let mut mean_queue = Sample::new();
    let mut mean_blocking = Sample::new();
    let mut final_queue = Sample::new();
    let mut completed = 0u64;
    let mut cycles = 0u64;
    let mut shed_arrivals = 0u64;
    for s in per_replica {
        response.merge(&s.response);
        utilization.push(s.utilization);
        mean_queue.push(s.mean_queue);
        mean_blocking.push(s.mean_blocking);
        final_queue.push(s.final_queue as f64);
        completed += s.completed;
        cycles += s.cycles;
        shed_arrivals += s.shed_arrivals;
    }
    ReplicatedStats {
        replicas: per_replica.len() as u64,
        response: Summary::from(&response),
        utilization: Summary::from(&utilization),
        mean_queue: Summary::from(&mean_queue),
        mean_blocking: Summary::from(&mean_blocking),
        completed,
        cycles,
        shed_arrivals,
        final_queue: Summary::from(&final_queue),
    }
}

/// Merge per-replica [`FaultedStats`] in slice (= replica) order.
pub fn merge_faulted(per_replica: &[FaultedStats]) -> ReplicatedFaultedStats {
    let stats: Vec<DynamicStats> = per_replica.iter().map(|f| f.stats).collect();
    let mut recoveries_observed = 0u64;
    let mut recovery_sum = 0.0f64;
    for f in per_replica {
        // A replica with no observed recoveries contributes nothing, and its
        // mean_recovery may be NaN (0/0); weighting by zero would still
        // poison the sum (NaN * 0 = NaN), so skip it outright.
        if f.recoveries_observed == 0 {
            continue;
        }
        recoveries_observed += f.recoveries_observed;
        recovery_sum += f.mean_recovery * f.recoveries_observed as f64;
    }
    // Detection latency pools the same way as recovery: weight by each
    // replica's observation count, skipping idle replicas outright.
    let mut detections_observed = 0u64;
    let mut detection_sum = 0.0f64;
    for f in per_replica {
        if f.detections_observed == 0 {
            continue;
        }
        detections_observed += f.detections_observed;
        detection_sum += f.mean_detection_cycles * f.detections_observed as f64;
    }
    ReplicatedFaultedStats {
        stats: merge_dynamic(&stats),
        allocations: per_replica.iter().map(|f| f.allocations).sum(),
        shed_total: per_replica.iter().map(|f| f.shed_total).sum(),
        recovered_total: per_replica.iter().map(|f| f.recovered_total).sum(),
        failures: per_replica.iter().map(|f| f.failures).sum(),
        repairs: per_replica.iter().map(|f| f.repairs).sum(),
        mean_recovery: if recoveries_observed > 0 {
            recovery_sum / recoveries_observed as f64
        } else {
            0.0
        },
        recoveries_observed,
        transform_rebuilds: per_replica.iter().map(|f| f.transform_rebuilds).sum(),
        recovery_cost: per_replica.iter().map(|f| f.recovery_cost).sum(),
        misrouted: per_replica.iter().map(|f| f.misrouted).sum(),
        byz_flagged: per_replica.iter().map(|f| f.byz_flagged).sum(),
        byz_false_positives: per_replica.iter().map(|f| f.byz_false_positives).sum(),
        mean_detection_cycles: if detections_observed > 0 {
            detection_sum / detections_observed as f64
        } else {
            0.0
        },
        detections_observed,
    }
}

/// Run `replicas` independent fault-free dynamic simulations of `cfg` on a
/// `threads`-worker pool and merge them (replica `r` = the `(cfg.seed, r)`
/// stream, so replica 0 reproduces [`SystemSim::run`] exactly).
pub fn run_replicated(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &DynamicConfig,
    replicas: usize,
    threads: usize,
) -> ReplicatedStats {
    let per_replica = crate::pool::run_indexed(replicas, threads, |r| {
        SystemSim::new(net, *cfg)
            .run_faulted_trial(scheduler, &FaultPlan::empty(), r as u64)
            .stats
    });
    merge_dynamic(&per_replica)
}

/// Replicated faulted runs: replica `r` additionally draws its fault plan
/// from [`fault_plan_seed`](crate::system::fault_plan_seed)`(cfg.seed, r)`,
/// mirroring
/// [`run_faulted_trials`](crate::system::run_faulted_trials) — this *is*
/// that batch plus the deterministic merge.
pub fn run_replicated_faulted(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &DynamicConfig,
    fault_cfg: &FaultPlanConfig,
    replicas: usize,
    threads: usize,
) -> ReplicatedFaultedStats {
    let per_replica =
        crate::system::run_faulted_trials(net, scheduler, cfg, fault_cfg, replicas, threads);
    merge_faulted(&per_replica)
}

/// Replicate every configuration of a load sweep on **one** flattened
/// `(config, replica)` task grid, so a sweep with few points still saturates
/// the pool. Returns one [`ReplicatedStats`] per configuration, in input
/// order.
pub fn run_replicated_sweep(
    net: &Network,
    scheduler: &dyn Scheduler,
    configs: &[DynamicConfig],
    replicas: usize,
    threads: usize,
) -> Vec<ReplicatedStats> {
    let replicas = replicas.max(1);
    let per: Vec<DynamicStats> = crate::pool::run_indexed(configs.len() * replicas, threads, |k| {
        let (ci, r) = (k / replicas, k % replicas);
        SystemSim::new(net, configs[ci])
            .run_faulted_trial(scheduler, &FaultPlan::empty(), r as u64)
            .stats
    });
    per.chunks(replicas).map(merge_dynamic).collect()
}

/// [`run_replicated`] under telemetry: each replica records into its **own**
/// [`Telemetry`] sink and the per-replica reports are merged in replica
/// order via [`TelemetryReport::merge`]. Unlike sharing one live sink
/// across workers (where the event trace interleaves in wall-clock order),
/// the merged counters, solver totals, and event stream are independent of
/// the thread count; only the span-latency histograms keep wall-clock
/// noise, since they measure real nanoseconds.
pub fn run_replicated_probed(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &DynamicConfig,
    replicas: usize,
    threads: usize,
) -> (ReplicatedStats, TelemetryReport) {
    let replicas = replicas.max(1);
    let sinks: Vec<Telemetry> = (0..replicas).map(|_| Telemetry::new()).collect();
    let per_replica = crate::pool::run_indexed(replicas, threads, |r| {
        SystemSim::new(net, *cfg)
            .run_faulted_trial_probed(scheduler, &FaultPlan::empty(), r as u64, &sinks[r])
            .stats
    });
    let mut report = sinks[0].report();
    for sink in &sinks[1..] {
        report.merge(&sink.report());
    }
    (merge_dynamic(&per_replica), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::scheduler::MaxFlowScheduler;
    use rsin_topology::builders::omega;

    fn small_cfg() -> DynamicConfig {
        DynamicConfig {
            arrival_rate: 0.4,
            sim_time: 120.0,
            warmup: 20.0,
            ..DynamicConfig::default()
        }
    }

    #[test]
    fn one_replica_reproduces_the_single_run() {
        let net = omega(8).unwrap();
        let cfg = small_cfg();
        let scheduler = MaxFlowScheduler::default();
        let single = SystemSim::new(&net, cfg).run(&scheduler);
        let rep = run_replicated(&net, &scheduler, &cfg, 1, 1);
        assert_eq!(rep.replicas, 1);
        assert_eq!(rep.completed, single.completed);
        assert_eq!(rep.cycles, single.cycles);
        assert_eq!(rep.response.mean.to_bits(), single.mean_response.to_bits());
        assert_eq!(rep.response.p99.to_bits(), single.response_p99.to_bits());
        assert_eq!(rep.utilization.mean.to_bits(), single.utilization.to_bits());
    }

    #[test]
    fn replicas_are_independent_streams() {
        let net = omega(8).unwrap();
        let cfg = small_cfg();
        let scheduler = MaxFlowScheduler::default();
        let rep = run_replicated(&net, &scheduler, &cfg, 4, 1);
        assert_eq!(rep.replicas, 4);
        // Four replicas pool four times the tasks of one (roughly), and the
        // across-replica utilization CI must be non-degenerate.
        let single = SystemSim::new(&net, cfg).run(&scheduler);
        assert!(rep.completed > 2 * single.completed);
        assert!(rep.utilization.ci95 > 0.0);
        assert_eq!(rep.response.n, rep.completed);
    }

    #[test]
    fn replicated_stats_bit_identical_across_thread_counts() {
        let net = omega(8).unwrap();
        let cfg = small_cfg();
        let scheduler = MaxFlowScheduler::default();
        let serial = run_replicated(&net, &scheduler, &cfg, 5, 1);
        for threads in [2, 3, 8] {
            let parallel = run_replicated(&net, &scheduler, &cfg, 5, threads);
            assert_eq!(serial.completed, parallel.completed, "threads={threads}");
            assert_eq!(serial.cycles, parallel.cycles, "threads={threads}");
            for (a, b) in [
                (serial.response, parallel.response),
                (serial.utilization, parallel.utilization),
                (serial.mean_queue, parallel.mean_queue),
                (serial.mean_blocking, parallel.mean_blocking),
            ] {
                assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "threads={threads}");
                assert_eq!(a.ci95.to_bits(), b.ci95.to_bits(), "threads={threads}");
                assert_eq!(a.p99.to_bits(), b.p99.to_bits(), "threads={threads}");
                assert_eq!(a.n, b.n, "threads={threads}");
            }
        }
    }

    #[test]
    fn faulted_replication_sums_survival_metrics() {
        let net = omega(8).unwrap();
        let cfg = small_cfg();
        let scheduler = MaxFlowScheduler::default();
        let fcfg = FaultPlanConfig::links(0.004, 15.0, cfg.sim_time);
        let per = crate::system::run_faulted_trials(&net, &scheduler, &cfg, &fcfg, 3, 1);
        let merged = merge_faulted(&per);
        assert_eq!(merged.stats.replicas, 3);
        assert_eq!(merged.failures, per.iter().map(|f| f.failures).sum::<u64>());
        assert_eq!(
            merged.transform_rebuilds,
            per.iter().map(|f| f.transform_rebuilds).sum::<u64>()
        );
        let direct = run_replicated_faulted(&net, &scheduler, &cfg, &fcfg, 3, 2);
        assert_eq!(direct.failures, merged.failures);
        assert_eq!(
            direct.stats.response.mean.to_bits(),
            merged.stats.response.mean.to_bits()
        );
        assert_eq!(
            direct.mean_recovery.to_bits(),
            merged.mean_recovery.to_bits()
        );
    }

    #[test]
    fn zero_recovery_replicas_cannot_poison_the_merged_mean() {
        // Regression: a replica that never observed a recovery carries
        // `recoveries_observed == 0`, and an upstream 0/0 can leave its
        // `mean_recovery` as NaN. Weighting it by zero still produced
        // NaN * 0 = NaN and poisoned the pooled mean.
        let net = omega(8).unwrap();
        let cfg = small_cfg();
        let scheduler = MaxFlowScheduler::default();
        let fcfg = FaultPlanConfig::links(0.01, 2.0, cfg.sim_time);
        let per = crate::system::run_faulted_trials(&net, &scheduler, &cfg, &fcfg, 2, 1);
        let baseline = merge_faulted(&per);
        let mut poisoned = per[0];
        poisoned.mean_recovery = f64::NAN;
        poisoned.recoveries_observed = 0;
        let merged = merge_faulted(&[poisoned, per[0], per[1]]);
        assert!(
            merged.mean_recovery.is_finite(),
            "NaN leaked into the pooled mean"
        );
        // The idle replica contributes nothing: same pooled value as without it.
        assert_eq!(
            merged.mean_recovery.to_bits(),
            baseline.mean_recovery.to_bits()
        );
        assert_eq!(merged.recoveries_observed, baseline.recoveries_observed);
        // All replicas idle: defined zero, not NaN.
        let idle = merge_faulted(&[poisoned]);
        assert_eq!(idle.mean_recovery, 0.0);
        assert_eq!(idle.recoveries_observed, 0);
    }

    #[test]
    fn replicated_sweep_matches_per_config_replication() {
        let net = omega(8).unwrap();
        let scheduler = MaxFlowScheduler::default();
        let configs: Vec<DynamicConfig> = [0.2, 0.5]
            .iter()
            .map(|&rate| DynamicConfig {
                arrival_rate: rate,
                ..small_cfg()
            })
            .collect();
        let swept = run_replicated_sweep(&net, &scheduler, &configs, 3, 4);
        assert_eq!(swept.len(), 2);
        for (cfg, s) in configs.iter().zip(&swept) {
            let direct = run_replicated(&net, &scheduler, cfg, 3, 1);
            assert_eq!(s.completed, direct.completed);
            assert_eq!(s.response.mean.to_bits(), direct.response.mean.to_bits());
            assert_eq!(
                s.utilization.ci95.to_bits(),
                direct.utilization.ci95.to_bits()
            );
        }
    }

    #[test]
    fn probed_replication_observes_without_disturbing() {
        let net = omega(8).unwrap();
        let cfg = small_cfg();
        let scheduler = MaxFlowScheduler::default();
        let plain = run_replicated(&net, &scheduler, &cfg, 3, 2);
        let (probed, report) = run_replicated_probed(&net, &scheduler, &cfg, 3, 2);
        assert_eq!(plain.completed, probed.completed);
        assert_eq!(
            plain.response.mean.to_bits(),
            probed.response.mean.to_bits()
        );
        // Every replica's cycles land in the merged counters.
        let cycles = report.counters[rsin_obs::Counter::Cycles.index()];
        assert_eq!(cycles, plain.cycles);
    }
}
