//! The monitor architecture (Fig. 6 of the paper), made explicit.
//!
//! "A dedicated monitor is responsible for resource scheduling … It
//! maintains the status of the interconnection network and resources. The
//! monitor enters a scheduling cycle when there are pending requests.
//! Requests received or resources released during a scheduling cycle will
//! not be processed until the next cycle."
//!
//! [`Monitor`] wraps any [`Scheduler`] with exactly those semantics:
//! requests and releases arriving *during* a cycle are queued and only
//! become visible at the next snapshot. It also prices each cycle with the
//! [`CostModel`] so experiments can compare the monitor's scheduling
//! latency against the distributed engine's.

use crate::cost::CostModel;
use rsin_core::model::{ScheduleOutcome, ScheduleProblem, ScheduleRequest};
use rsin_core::scheduler::Scheduler;
use rsin_topology::{CircuitId, CircuitState, Network};

/// When the monitor chooses to enter a scheduling cycle.
///
/// "To avoid repeated attempts of allocating blocked resources (i.e., the
/// case of cycling between states 4 and 5 in Fig. 10) and to improve the
/// scheduling efficiency, the MRSIN may choose to wait for more requests to
/// arrive and more resources to become available before entering a
/// scheduling cycle."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchingPolicy {
    /// Cycle as soon as any request and any free resource coexist.
    #[default]
    Immediate,
    /// Wait until at least this many requests are pending.
    WaitForRequests(usize),
    /// Wait until at least this many resources are free.
    WaitForResources(usize),
}

/// A centralized scheduling monitor over one network.
pub struct Monitor<'n> {
    circuits: CircuitState<'n>,
    /// Requests visible to the next cycle.
    pending: Vec<ScheduleRequest>,
    /// Requests that arrived during the current cycle (deferred).
    arriving: Vec<ScheduleRequest>,
    /// Resource availability visible to the next cycle; deferred releases.
    free: Vec<bool>,
    deferred_release: Vec<usize>,
    /// Resource type per resource (0 everywhere in homogeneous systems).
    resource_types: Vec<usize>,
    /// Live circuits per processor (so task completion can release them).
    live: Vec<Option<(CircuitId, usize)>>,
    in_cycle: bool,
    policy: BatchingPolicy,
    cost: CostModel,
    /// Total microseconds spent scheduling (monitor latency).
    pub scheduling_us: f64,
    /// Cycles executed.
    pub cycles: u64,
}

/// What one monitor cycle did.
#[derive(Debug, Clone)]
pub struct CycleOutcome {
    /// The mapping committed this cycle.
    pub outcome: ScheduleOutcome,
    /// Monitor latency charged for this cycle, in microseconds.
    pub latency_us: f64,
}

impl<'n> Monitor<'n> {
    /// A monitor over a free homogeneous network; all resources available.
    pub fn new(net: &'n Network, cost: CostModel) -> Self {
        let types = vec![0; net.num_resources()];
        Monitor::with_types(net, cost, types)
    }

    /// A monitor over a heterogeneous pool: `resource_types[r]` is the type
    /// of resource `r`.
    pub fn with_types(net: &'n Network, cost: CostModel, resource_types: Vec<usize>) -> Self {
        assert_eq!(resource_types.len(), net.num_resources());
        Monitor {
            circuits: CircuitState::new(net),
            pending: Vec::new(),
            arriving: Vec::new(),
            free: vec![true; net.num_resources()],
            deferred_release: Vec::new(),
            resource_types,
            live: vec![None; net.num_processors()],
            in_cycle: false,
            policy: BatchingPolicy::Immediate,
            cost,
            scheduling_us: 0.0,
            cycles: 0,
        }
    }

    /// Current circuit state (for inspection).
    pub fn circuits(&self) -> &CircuitState<'n> {
        &self.circuits
    }

    /// Set the cycle-entry batching policy (default: immediate).
    pub fn set_policy(&mut self, policy: BatchingPolicy) {
        self.policy = policy;
    }

    /// A processor submits a request. Visible immediately unless a cycle is
    /// in progress, in which case it waits for the next one.
    pub fn submit(&mut self, request: ScheduleRequest) {
        if self.in_cycle {
            self.arriving.push(request);
        } else {
            self.pending.push(request);
        }
    }

    /// A resource finishes its task. The release is deferred to the next
    /// cycle when one is in progress.
    pub fn release_resource(&mut self, resource: usize) {
        if self.in_cycle {
            self.deferred_release.push(resource);
        } else {
            self.free[resource] = true;
        }
    }

    /// A processor finishes transmitting: its circuit is torn down (the
    /// resource stays busy until [`Monitor::release_resource`]).
    pub fn transmission_done(&mut self, processor: usize) {
        if let Some((c, _)) = self.live[processor].take() {
            let _ = self.circuits.release(c);
        }
    }

    /// Number of requests the next cycle will see.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Run one scheduling cycle: snapshot → schedule → commit. Returns
    /// `None` if there was nothing to do (no pending requests or no free
    /// resources — the idle states of Fig. 10).
    pub fn cycle(&mut self, scheduler: &dyn Scheduler) -> Option<CycleOutcome> {
        let free_now: Vec<usize> = (0..self.free.len()).filter(|&r| self.free[r]).collect();
        if self.pending.is_empty() || free_now.is_empty() {
            return None;
        }
        // Batching: hold off the cycle until the policy's threshold is met
        // (Fig. 10's deliberate waiting states).
        match self.policy {
            BatchingPolicy::Immediate => {}
            BatchingPolicy::WaitForRequests(k) => {
                if self.pending.len() < k {
                    return None;
                }
            }
            BatchingPolicy::WaitForResources(k) => {
                if free_now.len() < k {
                    return None;
                }
            }
        }
        self.in_cycle = true;
        let problem = ScheduleProblem {
            circuits: &self.circuits,
            requests: self.pending.clone(),
            free: free_now
                .iter()
                .map(|&r| rsin_core::model::FreeResource {
                    resource: r,
                    preference: 1,
                    resource_type: self.resource_types[r],
                })
                .collect(),
        };
        let outcome = scheduler.schedule(&problem);
        drop(problem);
        // Commit: establish circuits, claim resources, drop served requests.
        for a in &outcome.assignments {
            let c = self
                .circuits
                .establish(&a.path)
                .expect("scheduler paths are free");
            self.free[a.resource] = false;
            self.live[a.processor] = Some((c, a.resource));
            self.pending.retain(|r| r.processor != a.processor);
        }
        let latency_us = self.cost.monitor_us(outcome.estimated_instructions);
        self.scheduling_us += latency_us;
        self.cycles += 1;
        // End of cycle: deferred events become visible.
        self.in_cycle = false;
        self.pending.append(&mut self.arriving);
        for r in self.deferred_release.drain(..) {
            self.free[r] = true;
        }
        Some(CycleOutcome {
            outcome,
            latency_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::scheduler::MaxFlowScheduler;
    use rsin_topology::builders::omega;

    fn req(p: usize) -> ScheduleRequest {
        ScheduleRequest {
            processor: p,
            priority: 1,
            resource_type: 0,
        }
    }

    #[test]
    fn idle_monitor_runs_no_cycle() {
        let net = omega(8).unwrap();
        let mut m = Monitor::new(&net, CostModel::default());
        assert!(m.cycle(&MaxFlowScheduler::default()).is_none());
        assert_eq!(m.cycles, 0);
    }

    #[test]
    fn basic_cycle_allocates_and_prices() {
        let net = omega(8).unwrap();
        let mut m = Monitor::new(&net, CostModel::default());
        m.submit(req(0));
        m.submit(req(3));
        let c = m.cycle(&MaxFlowScheduler::default()).unwrap();
        assert_eq!(c.outcome.allocated(), 2);
        assert!(c.latency_us > 0.0);
        assert_eq!(m.pending_count(), 0);
        assert_eq!(m.circuits().occupied_count(), 8);
    }

    #[test]
    fn resources_stay_busy_until_released() {
        let net = omega(8).unwrap();
        let mut m = Monitor::new(&net, CostModel::default());
        for p in 0..8 {
            m.submit(req(p));
        }
        let c1 = m.cycle(&MaxFlowScheduler::default()).unwrap();
        let served = c1.outcome.allocated();
        assert!(served >= 1);
        // All resources claimed (8 served) or all requests queued; submit
        // another request: nothing schedulable if all resources busy.
        if served == 8 {
            m.submit(req(0)); // p0 again (its circuit may still be up)
            assert!(m.cycle(&MaxFlowScheduler::default()).is_none());
        }
        // Release one resource and tear down its processor's circuit.
        let a = &c1.outcome.assignments[0];
        m.transmission_done(a.processor);
        m.release_resource(a.resource);
        m.submit(req(a.processor));
        let c2 = m.cycle(&MaxFlowScheduler::default()).unwrap();
        assert_eq!(c2.outcome.allocated(), 1);
    }

    #[test]
    fn mid_cycle_arrivals_wait_for_next_cycle() {
        // Simulated by submitting while in_cycle is forced via the deferred
        // API path: requests pushed to `arriving` must not be served by the
        // running cycle but must appear afterwards.
        let net = omega(8).unwrap();
        let mut m = Monitor::new(&net, CostModel::default());
        m.submit(req(0));
        // Emulate an arrival during the cycle by toggling the flag around
        // a manual submit (the SystemSim integration does this for real).
        m.in_cycle = true;
        m.submit(req(5));
        m.in_cycle = false;
        assert_eq!(m.pending_count(), 1, "p6's request is deferred");
        let c = m.cycle(&MaxFlowScheduler::default()).unwrap();
        assert_eq!(c.outcome.allocated(), 1);
        assert_eq!(c.outcome.assignments[0].processor, 0);
        // Now the deferred request is visible.
        assert_eq!(m.pending_count(), 1);
        let c2 = m.cycle(&MaxFlowScheduler::default()).unwrap();
        assert_eq!(c2.outcome.assignments[0].processor, 5);
    }

    #[test]
    fn batching_policy_defers_cycles() {
        let net = omega(8).unwrap();
        let mut m = Monitor::new(&net, CostModel::default());
        m.set_policy(BatchingPolicy::WaitForRequests(3));
        m.submit(req(0));
        m.submit(req(1));
        assert!(
            m.cycle(&MaxFlowScheduler::default()).is_none(),
            "below threshold"
        );
        m.submit(req(2));
        let c = m.cycle(&MaxFlowScheduler::default()).unwrap();
        assert_eq!(
            c.outcome.allocated(),
            3,
            "one batched cycle serves all three"
        );
        assert_eq!(m.cycles, 1);
    }

    #[test]
    fn resource_batching_waits_for_pool() {
        let net = omega(8).unwrap();
        let mut m = Monitor::new(&net, CostModel::default());
        // Claim 7 of 8 resources.
        for p in 0..7 {
            m.submit(req(p));
        }
        m.cycle(&MaxFlowScheduler::default()).unwrap();
        m.set_policy(BatchingPolicy::WaitForResources(2));
        m.submit(req(7));
        assert!(
            m.cycle(&MaxFlowScheduler::default()).is_none(),
            "only 1 resource free"
        );
        // A release brings the pool to the threshold.
        let freed = 0; // resource allocated to p1 in the first cycle? find one:
        let _ = freed;
        // Release any allocated resource: p0's.
        m.transmission_done(0);
        m.release_resource(find_resource_of(&m));
        let c = m.cycle(&MaxFlowScheduler::default());
        assert!(c.is_some());
    }

    /// Helper: index of some busy resource (the first).
    fn find_resource_of(m: &Monitor) -> usize {
        (0..8).find(|&r| !m.free[r]).expect("some resource busy")
    }

    #[test]
    fn accumulates_scheduling_time() {
        let net = omega(8).unwrap();
        let mut m = Monitor::new(&net, CostModel::default());
        m.submit(req(0));
        m.cycle(&MaxFlowScheduler::default()).unwrap();
        let t1 = m.scheduling_us;
        m.transmission_done(0);
        m.release_resource(0);
        m.submit(req(1));
        m.cycle(&MaxFlowScheduler::default()).unwrap();
        assert!(m.scheduling_us > t1);
        assert_eq!(m.cycles, 2);
    }
}
