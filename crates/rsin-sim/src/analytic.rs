//! Analytic blocking model for banyan networks (Patel's recurrence).
//!
//! The performance literature the paper builds on (Patel \[37\], Dias &
//! Jump \[11\]) analyzes delta networks under uniform random requests with
//! a per-stage recurrence: if each input of an `a×b` crossbar stage
//! carries a request with probability `p`, each of its outputs is
//! requested with probability
//!
//! ```text
//! p' = 1 − (1 − p/b)^a
//! ```
//!
//! Iterating over the stages gives the probability that a network output
//! carries a request, hence the expected acceptance rate. The ANALYTIC
//! experiment compares this closed form against this workspace's simulated
//! address-mapped routing — theory vs. rebuilt measurement.

/// One step of Patel's recurrence for an `a×b` crossbar stage.
///
/// ```
/// // Both inputs of a 2x2 switch loaded: each output requested with 3/4.
/// assert!((rsin_sim::analytic::patel_stage(1.0, 2, 2) - 0.75).abs() < 1e-12);
/// ```
pub fn patel_stage(p: f64, a: usize, b: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    1.0 - (1.0 - p / b as f64).powi(a as i32)
}

/// Output-request probability after `stages` stages of `a×a` switches,
/// starting from input load `p0`.
pub fn patel_output_rate(p0: f64, a: usize, stages: usize) -> f64 {
    let mut p = p0;
    for _ in 0..stages {
        p = patel_stage(p, a, a);
    }
    p
}

/// Expected fraction of offered requests accepted by an `n×n` banyan of
/// `a×a` switches under uniform random destinations with input load `p0`:
/// `accepted/offered = p_out · n / (p0 · n)`.
pub fn patel_acceptance(p0: f64, a: usize, stages: usize) -> f64 {
    if p0 <= 0.0 {
        return 1.0;
    }
    patel_output_rate(p0, a, stages) / p0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_full_load() {
        // 2x2 switch, both inputs loaded: each output requested with
        // probability 1 - (1/2)^2 = 0.75.
        assert!((patel_stage(1.0, 2, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rate_decreases_with_stages() {
        let mut prev = 1.0;
        for stages in 1..8 {
            let r = patel_output_rate(1.0, 2, stages);
            assert!(r < prev, "stage {stages}: {r} >= {prev}");
            assert!(r > 0.0);
            prev = r;
        }
    }

    #[test]
    fn acceptance_improves_at_light_load() {
        let heavy = patel_acceptance(1.0, 2, 3);
        let light = patel_acceptance(0.2, 2, 3);
        assert!(light > heavy);
        assert!(light <= 1.0 + 1e-12);
    }

    #[test]
    fn zero_load_accepts_everything() {
        assert_eq!(patel_acceptance(0.0, 2, 3), 1.0);
    }

    #[test]
    fn larger_switches_block_less_at_equal_size() {
        // For the same 16x16 network: 4 stages of 2x2 vs 2 stages of 4x4.
        // Fewer, larger switches lose less to internal contention (Patel's
        // classic observation favouring delta networks of larger radix).
        let via_2x2 = patel_acceptance(1.0, 2, 4);
        let via_4x4 = patel_acceptance(1.0, 4, 2);
        assert!(via_4x4 > via_2x2, "4x4: {via_4x4}, 2x2: {via_2x2}");
        // Known values: 0.4498… vs 0.5275…
        assert!((via_2x2 - 0.4499).abs() < 1e-3);
        assert!((via_4x4 - 0.5275).abs() < 1e-3);
    }
}
