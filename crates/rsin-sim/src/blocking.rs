//! Monte-Carlo blocking-probability experiments (the paper's headline
//! numbers).
//!
//! A trial draws a random snapshot (requesting processors, free resources,
//! optional pre-occupied circuits), runs one scheduler for one scheduling
//! cycle, and records the *blocking fraction* `1 − allocated / min(x, y)`.
//! Averaging over many trials reproduces the comparison of Section II:
//! optimal flow-based mapping ≈ 2 % blocking vs heuristic routing ≈ 20 %
//! on an 8×8 cube MRSIN with a free network, and < 5 % on the Omega.

use crate::metrics::{Sample, Summary};
use crate::workload::{random_snapshot, trial_rng};
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::Scheduler;
use rsin_topology::Network;

/// Parameters of a blocking experiment.
#[derive(Debug, Clone, Copy)]
pub struct BlockingConfig {
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Requesting processors per trial (capped by availability).
    pub requests: usize,
    /// Free resources per trial.
    pub resources: usize,
    /// Pre-established circuits per trial (network load).
    pub occupied_circuits: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// Aggregated results of a blocking experiment.
#[derive(Debug, Clone, Copy)]
pub struct BlockingStats {
    /// Blocking fraction (mean ± CI over trials).
    pub blocking: Summary,
    /// Mean resources allocated per trial.
    pub allocated: Summary,
    /// Trials in which at least one request was blocked.
    pub trials_with_blocking: u64,
}

/// Run the experiment for one scheduler on one topology.
pub fn run_blocking(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &BlockingConfig,
) -> BlockingStats {
    let mut blocking = Sample::new();
    let mut allocated = Sample::new();
    let mut trials_with_blocking = 0;
    for trial in 0..cfg.trials {
        let mut rng = trial_rng(cfg.seed, trial);
        let snap =
            random_snapshot(net, cfg.requests, cfg.resources, cfg.occupied_circuits, &mut rng);
        let problem =
            ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        let denom = snap.requesting.len().min(snap.free.len());
        let out = scheduler.schedule(&problem);
        debug_assert!(
            rsin_core::mapping::verify(&out.assignments, &problem).is_ok(),
            "scheduler produced an invalid mapping"
        );
        let b = out.blocking_fraction(denom);
        blocking.push(b);
        allocated.push(out.allocated() as f64);
        if b > 0.0 {
            trials_with_blocking += 1;
        }
    }
    BlockingStats {
        blocking: Summary::from(&blocking),
        allocated: Summary::from(&allocated),
        trials_with_blocking,
    }
}

/// Run the same trials for several schedulers (shared snapshots via the
/// seed), returning `(name, stats)` rows — one table line per scheduler.
pub fn compare_schedulers(
    net: &Network,
    schedulers: &[&dyn Scheduler],
    cfg: &BlockingConfig,
) -> Vec<(&'static str, BlockingStats)> {
    schedulers.iter().map(|s| (s.name(), run_blocking(net, *s, cfg))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder};
    use rsin_topology::builders::{generalized_cube, omega};

    #[test]
    fn optimal_beats_or_ties_heuristic_everywhere() {
        let net = generalized_cube(8).unwrap();
        let cfg = BlockingConfig {
            trials: 300,
            requests: 6,
            resources: 6,
            occupied_circuits: 0,
            seed: 11,
        };
        let opt = run_blocking(&net, &MaxFlowScheduler::default(), &cfg);
        let heu = run_blocking(
            &net,
            &GreedyScheduler::new(RequestOrder::Shuffled(5)),
            &cfg,
        );
        assert!(
            opt.blocking.mean <= heu.blocking.mean + 1e-12,
            "optimal {} vs heuristic {}",
            opt.blocking.mean,
            heu.blocking.mean
        );
    }

    #[test]
    fn optimal_blocking_is_small_on_free_omega() {
        // The paper: < 5 % blockages on a typical Omega with optimal
        // scheduling (free network).
        let net = omega(8).unwrap();
        let cfg = BlockingConfig {
            trials: 400,
            requests: 5,
            resources: 5,
            occupied_circuits: 0,
            seed: 13,
        };
        let opt = run_blocking(&net, &MaxFlowScheduler::default(), &cfg);
        assert!(opt.blocking.mean < 0.10, "blocking {}", opt.blocking.mean);
    }

    #[test]
    fn occupancy_increases_blocking() {
        let net = omega(8).unwrap();
        let base = BlockingConfig {
            trials: 200,
            requests: 4,
            resources: 4,
            occupied_circuits: 0,
            seed: 17,
        };
        let loaded = BlockingConfig { occupied_circuits: 3, ..base };
        let free = run_blocking(&net, &MaxFlowScheduler::default(), &base);
        let busy = run_blocking(&net, &MaxFlowScheduler::default(), &loaded);
        assert!(busy.blocking.mean >= free.blocking.mean);
    }

    #[test]
    fn compare_returns_one_row_per_scheduler() {
        let net = omega(8).unwrap();
        let cfg = BlockingConfig {
            trials: 20,
            requests: 3,
            resources: 3,
            occupied_circuits: 0,
            seed: 19,
        };
        let opt = MaxFlowScheduler::default();
        let heu = GreedyScheduler::default();
        let rows = compare_schedulers(&net, &[&opt, &heu], &cfg);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "max-flow(dinic)");
    }
}
