//! Monte-Carlo blocking-probability experiments (the paper's headline
//! numbers).
//!
//! A trial draws a random snapshot (requesting processors, free resources,
//! optional pre-occupied circuits), runs one scheduler for one scheduling
//! cycle, and records the *blocking fraction* `1 − allocated / min(x, y)`.
//! Averaging over many trials reproduces the comparison of Section II:
//! optimal flow-based mapping ≈ 2 % blocking vs heuristic routing ≈ 20 %
//! on an 8×8 cube MRSIN with a free network, and < 5 % on the Omega.

use crate::metrics::{Sample, Summary};
use crate::workload::{random_snapshot, trial_rng};
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{ScheduleScratch, Scheduler};
use rsin_topology::Network;

/// Parameters of a blocking experiment.
#[derive(Debug, Clone, Copy)]
pub struct BlockingConfig {
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Requesting processors per trial (capped by availability).
    pub requests: usize,
    /// Free resources per trial.
    pub resources: usize,
    /// Pre-established circuits per trial (network load).
    pub occupied_circuits: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// Aggregated results of a blocking experiment.
#[derive(Debug, Clone, Copy)]
pub struct BlockingStats {
    /// Blocking fraction (mean ± CI over trials).
    pub blocking: Summary,
    /// Mean resources allocated per trial.
    pub allocated: Summary,
    /// Trials in which at least one request was blocked.
    pub trials_with_blocking: u64,
}

/// What one trial contributes to the aggregate, kept per-trial so trials can
/// be farmed out to worker threads and reduced afterwards in trial order.
#[derive(Debug, Clone, Copy, Default)]
struct TrialResult {
    blocking: f64,
    allocated: f64,
}

/// One Monte-Carlo trial. A pure function of `(net, scheduler, cfg, trial)`:
/// the RNG stream is derived from `(seed, trial)` alone and the scratch only
/// caches topology-dependent structures, so the result is independent of
/// which worker runs the trial and of whatever the scratch solved before.
fn run_trial(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &BlockingConfig,
    trial: u64,
    scratch: &mut ScheduleScratch,
) -> TrialResult {
    let mut rng = trial_rng(cfg.seed, trial);
    let snap = random_snapshot(
        net,
        cfg.requests,
        cfg.resources,
        cfg.occupied_circuits,
        &mut rng,
    );
    let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
    let denom = snap.requesting.len().min(snap.free.len());
    let out = scheduler.schedule_reusing(&problem, scratch);
    debug_assert!(
        rsin_core::mapping::verify(&out.assignments, &problem).is_ok(),
        "scheduler produced an invalid mapping"
    );
    TrialResult {
        blocking: out.blocking_fraction(denom),
        allocated: out.allocated() as f64,
    }
}

/// Run the experiment for one scheduler on one topology (single-threaded;
/// see [`run_blocking_threads`] for the parallel variant — both produce
/// bit-identical statistics).
pub fn run_blocking(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &BlockingConfig,
) -> BlockingStats {
    run_blocking_threads(net, scheduler, cfg, 1)
}

/// [`run_blocking`] with the trials pulled from a shared cursor by
/// `threads` scoped workers (see [`crate::pool`]).
///
/// Determinism contract: every trial seeds its own RNG stream from
/// `(cfg.seed, trial)` and writes its result into a slot indexed by trial
/// number; the Welford reduction then runs sequentially in trial order.
/// Because the reduction — not the trial execution order — fixes the
/// floating-point evaluation order, the returned [`BlockingStats`] is
/// bit-identical for any thread count, including 1.
pub fn run_blocking_threads(
    net: &Network,
    scheduler: &dyn Scheduler,
    cfg: &BlockingConfig,
    threads: usize,
) -> BlockingStats {
    let results = crate::pool::run_indexed_with(
        cfg.trials as usize,
        threads,
        ScheduleScratch::new,
        |scratch, trial| run_trial(net, scheduler, cfg, trial as u64, scratch),
    );
    // Sequential reduction in trial order: Welford accumulation is not
    // associative, so folding per-worker partials would make the statistics
    // depend on the partition. Folding the per-trial records here does not.
    let mut blocking = Sample::new();
    let mut allocated = Sample::new();
    let mut trials_with_blocking = 0;
    for r in &results {
        blocking.push(r.blocking);
        allocated.push(r.allocated);
        if r.blocking > 0.0 {
            trials_with_blocking += 1;
        }
    }
    BlockingStats {
        blocking: Summary::from(&blocking),
        allocated: Summary::from(&allocated),
        trials_with_blocking,
    }
}

/// Run the same trials for several schedulers (shared snapshots via the
/// seed), returning `(name, stats)` rows — one table line per scheduler.
/// Fully serial: one scheduler at a time, one thread for its trials.
pub fn compare_schedulers(
    net: &Network,
    schedulers: &[&dyn Scheduler],
    cfg: &BlockingConfig,
) -> Vec<(&'static str, BlockingStats)> {
    compare_schedulers_threads(net, schedulers, cfg, 1)
}

/// [`compare_schedulers`] with a total worker budget of `threads`, split
/// across *both* grid axes: the scheduler rows run on an outer pool of
/// `min(threads, rows)` workers, and each row fans its trials out over
/// `threads / rows` (at least 1) inner workers. A multi-row table therefore
/// finishes in max-of-rows rather than sum-of-rows wall-clock once
/// `threads > 1`, while `threads == 1` remains the fully serial loop.
///
/// Rows come back in input order and every statistic is bit-identical for
/// any thread count — each row is a [`run_blocking_threads`] call, which is
/// itself thread-count-invariant.
pub fn compare_schedulers_threads(
    net: &Network,
    schedulers: &[&dyn Scheduler],
    cfg: &BlockingConfig,
    threads: usize,
) -> Vec<(&'static str, BlockingStats)> {
    let rows = schedulers.len();
    let threads = threads.max(1);
    let inner = (threads / rows.max(1)).max(1);
    crate::pool::run_indexed(rows, threads.min(rows), |i| {
        (
            schedulers[i].name(),
            run_blocking_threads(net, schedulers[i], cfg, inner),
        )
    })
}

/// One independent worker pool per scheduler: row `i` gets its own
/// `threads_per_scheduler`-worker pool and all pools run concurrently, so
/// the table finishes in max-of-rows wall-clock regardless of how the rows'
/// costs are skewed. This is the explicit-width variant of
/// [`compare_schedulers_threads`] for callers that size pools themselves
/// (the `bench_smoke` scheduler-parallel gate times exactly this against
/// the serial loop).
pub fn compare_schedulers_pools(
    net: &Network,
    schedulers: &[&dyn Scheduler],
    cfg: &BlockingConfig,
    threads_per_scheduler: usize,
) -> Vec<(&'static str, BlockingStats)> {
    let rows = schedulers.len();
    crate::pool::run_indexed(rows, rows, |i| {
        (
            schedulers[i].name(),
            run_blocking_threads(net, schedulers[i], cfg, threads_per_scheduler),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder};
    use rsin_topology::builders::{generalized_cube, omega};

    #[test]
    fn optimal_beats_or_ties_heuristic_everywhere() {
        let net = generalized_cube(8).unwrap();
        let cfg = BlockingConfig {
            trials: 300,
            requests: 6,
            resources: 6,
            occupied_circuits: 0,
            seed: 11,
        };
        let opt = run_blocking(&net, &MaxFlowScheduler::default(), &cfg);
        let heu = run_blocking(&net, &GreedyScheduler::new(RequestOrder::Shuffled(5)), &cfg);
        assert!(
            opt.blocking.mean <= heu.blocking.mean + 1e-12,
            "optimal {} vs heuristic {}",
            opt.blocking.mean,
            heu.blocking.mean
        );
    }

    #[test]
    fn optimal_blocking_is_small_on_free_omega() {
        // The paper: < 5 % blockages on a typical Omega with optimal
        // scheduling (free network).
        let net = omega(8).unwrap();
        let cfg = BlockingConfig {
            trials: 400,
            requests: 5,
            resources: 5,
            occupied_circuits: 0,
            seed: 13,
        };
        let opt = run_blocking(&net, &MaxFlowScheduler::default(), &cfg);
        assert!(opt.blocking.mean < 0.10, "blocking {}", opt.blocking.mean);
    }

    #[test]
    fn occupancy_increases_blocking() {
        let net = omega(8).unwrap();
        let base = BlockingConfig {
            trials: 200,
            requests: 4,
            resources: 4,
            occupied_circuits: 0,
            seed: 17,
        };
        let loaded = BlockingConfig {
            occupied_circuits: 3,
            ..base
        };
        let free = run_blocking(&net, &MaxFlowScheduler::default(), &base);
        let busy = run_blocking(&net, &MaxFlowScheduler::default(), &loaded);
        assert!(busy.blocking.mean >= free.blocking.mean);
    }

    #[test]
    fn thread_count_does_not_change_statistics() {
        // The determinism contract: identical BlockingStats — bit for bit —
        // for 1, 2, and 8 workers, for an optimal and a heuristic scheduler.
        let net = omega(8).unwrap();
        let cfg = BlockingConfig {
            trials: 97, // deliberately not a multiple of the thread counts
            requests: 5,
            resources: 5,
            occupied_circuits: 2,
            seed: 23,
        };
        let schedulers: [&dyn rsin_core::scheduler::Scheduler; 2] =
            [&MaxFlowScheduler::default(), &GreedyScheduler::default()];
        for s in schedulers {
            let one = run_blocking_threads(&net, s, &cfg, 1);
            for threads in [2, 3, 8] {
                let many = run_blocking_threads(&net, s, &cfg, threads);
                assert_eq!(one.blocking.mean.to_bits(), many.blocking.mean.to_bits());
                assert_eq!(one.blocking.ci95.to_bits(), many.blocking.ci95.to_bits());
                assert_eq!(one.allocated.mean.to_bits(), many.allocated.mean.to_bits());
                assert_eq!(one.allocated.ci95.to_bits(), many.allocated.ci95.to_bits());
                assert_eq!(one.blocking.n, many.blocking.n);
                assert_eq!(one.trials_with_blocking, many.trials_with_blocking);
            }
        }
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let net = omega(8).unwrap();
        let cfg = BlockingConfig {
            trials: 3,
            requests: 4,
            resources: 4,
            occupied_circuits: 0,
            seed: 29,
        };
        let a = run_blocking_threads(&net, &MaxFlowScheduler::default(), &cfg, 16);
        let b = run_blocking(&net, &MaxFlowScheduler::default(), &cfg);
        assert_eq!(a.blocking.mean.to_bits(), b.blocking.mean.to_bits());
        assert_eq!(a.blocking.n, 3);
    }

    #[test]
    fn scheduler_pools_match_serial_rows_bit_for_bit() {
        // The tentpole contract: running each scheduler on its own pool
        // (and splitting a thread budget across the scheduler axis) must
        // reproduce the serial row-by-row table exactly.
        let net = omega(8).unwrap();
        let cfg = BlockingConfig {
            trials: 61,
            requests: 5,
            resources: 5,
            occupied_circuits: 1,
            seed: 31,
        };
        let opt = MaxFlowScheduler::default();
        let heu = GreedyScheduler::default();
        let schedulers: [&dyn rsin_core::scheduler::Scheduler; 2] = [&opt, &heu];
        let serial = compare_schedulers(&net, &schedulers, &cfg);
        for (budget, per_pool) in [(4, 1), (8, 2), (2, 3)] {
            let budgeted = compare_schedulers_threads(&net, &schedulers, &cfg, budget);
            let pooled = compare_schedulers_pools(&net, &schedulers, &cfg, per_pool);
            for rows in [&budgeted, &pooled] {
                assert_eq!(rows.len(), serial.len());
                for (a, b) in serial.iter().zip(rows.iter()) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.blocking.mean.to_bits(), b.1.blocking.mean.to_bits());
                    assert_eq!(a.1.blocking.ci95.to_bits(), b.1.blocking.ci95.to_bits());
                    assert_eq!(a.1.allocated.mean.to_bits(), b.1.allocated.mean.to_bits());
                    assert_eq!(a.1.trials_with_blocking, b.1.trials_with_blocking);
                }
            }
        }
    }

    #[test]
    fn compare_returns_one_row_per_scheduler() {
        let net = omega(8).unwrap();
        let cfg = BlockingConfig {
            trials: 20,
            requests: 3,
            resources: 3,
            occupied_circuits: 0,
            seed: 19,
        };
        let opt = MaxFlowScheduler::default();
        let heu = GreedyScheduler::default();
        let rows = compare_schedulers(&net, &[&opt, &heu], &cfg);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "max-flow(dinic)");
    }
}
