//! Streaming command logs for the incremental scheduler.
//!
//! A streaming service (`rsin-serve`) consumes a continuous sequence of
//! [`StreamCommand`]s — one request or one release per line — instead of the
//! batch snapshots the static experiments use. This module is the single
//! source of truth for everything every consumer of such a stream shares:
//!
//! * [`generate_commands`] — a deterministic workload generator on the
//!   `(seed, trial)` RNG-stream convention, with a `load` knob steering the
//!   request/release mix (saturation sweeps vary only the knob);
//! * [`encode_commands`] / [`parse_commands`] — the `R <p>` / `F <p>` / `S`
//!   text codec the CI determinism job records and replays (`S` is the
//!   in-band stats probe; [`with_stats_every`] interleaves them);
//! * [`format_decision`] — the canonical decision-log line. The service's
//!   worker threads, the replay helpers, and the CI byte-comparison all
//!   format through this one function, so "same decisions" and "same log
//!   bytes" are the same statement;
//! * [`replay_incremental`] / [`replay_batch`] — drive a command slice
//!   through the warm-start scheduler, or re-solve every prefix from zero
//!   flow (the Theorem 2 oracle and the benchmark's comparison baseline).

use crate::system::SimError;
use crate::workload::trial_rng;
use rand::rngs::StdRng;
use rand::Rng;
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{
    IncrementalBackend, IncrementalScheduler, MaxFlowScheduler, ScheduleScratch, Scheduler,
    StreamDecision,
};
use rsin_topology::{CircuitState, Network};

/// One line of a streaming command log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamCommand {
    /// Processor `processor` requests a resource (`R <p>`).
    Request {
        /// Requesting processor.
        processor: usize,
    },
    /// Processor `processor` frees its resource or withdraws (`F <p>`).
    Release {
        /// Releasing processor.
        processor: usize,
    },
    /// In-band introspection (`S`): the service emits one canonical stats
    /// line at this point in the stream. Not a scheduling command — the
    /// replay helpers skip it, and it consumes no generator randomness.
    Stats,
}

impl StreamCommand {
    /// The processor the command concerns (`None` for [`Stats`]).
    ///
    /// [`Stats`]: StreamCommand::Stats
    pub fn processor(self) -> Option<usize> {
        match self {
            StreamCommand::Request { processor } | StreamCommand::Release { processor } => {
                Some(processor)
            }
            StreamCommand::Stats => None,
        }
    }
}

/// Generate a deterministic command stream for `processors` processors.
///
/// Every processor is either *idle* or *active* (has an outstanding
/// request); the generator only ever emits a `Request` for an idle processor
/// and a `Release` for an active one, so any prefix of the stream is a valid
/// interleaving. Each event flips a biased coin with `load` = probability of
/// *preferring* a request: higher load keeps more processors active and
/// pushes the scheduler toward saturation. When the preferred side has no
/// eligible processor the other side is used, so exactly `events` commands
/// are always produced (except `processors == 0`, which yields none).
///
/// Determinism: draws come from [`trial_rng`]`(seed, trial)` only — same
/// arguments, same stream, byte-identical encoded log.
pub fn generate_commands(
    processors: usize,
    events: usize,
    load: f64,
    seed: u64,
    trial: u64,
) -> Vec<StreamCommand> {
    if processors == 0 {
        return Vec::new();
    }
    let mut rng: StdRng = trial_rng(seed, trial);
    let mut active = vec![false; processors];
    let mut active_count = 0usize;
    let mut out = Vec::with_capacity(events);
    for _ in 0..events {
        let idle_count = processors - active_count;
        let want_request = if idle_count == 0 {
            false
        } else if active_count == 0 {
            true
        } else {
            rng.random_range(0.0..1.0) < load
        };
        // Pick uniformly among the eligible side (k-th idle or k-th active;
        // a linear scan keeps the generator obviously correct — streams are
        // thousands of events over tens of processors).
        let (target_state, k) = if want_request {
            (false, rng.random_range(0..idle_count))
        } else {
            (true, rng.random_range(0..active_count))
        };
        let p = active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == target_state)
            .nth(k)
            .map(|(p, _)| p)
            .expect("eligible side is nonempty");
        if want_request {
            active[p] = true;
            active_count += 1;
            out.push(StreamCommand::Request { processor: p });
        } else {
            active[p] = false;
            active_count -= 1;
            out.push(StreamCommand::Release { processor: p });
        }
    }
    out
}

/// Interleave a [`StreamCommand::Stats`] probe after every `every`
/// commands of `commands` (and one final probe if the stream is nonempty
/// and does not already end on a boundary). `every == 0` returns the
/// stream unchanged.
pub fn with_stats_every(commands: &[StreamCommand], every: usize) -> Vec<StreamCommand> {
    if every == 0 {
        return commands.to_vec();
    }
    let mut out = Vec::with_capacity(commands.len() + commands.len() / every + 1);
    for chunk in commands.chunks(every) {
        out.extend_from_slice(chunk);
        out.push(StreamCommand::Stats);
    }
    out
}

/// Encode commands as the `R <p>` / `F <p>` / `S` line format.
pub fn encode_commands(commands: &[StreamCommand]) -> String {
    let mut s = String::new();
    for c in commands {
        match *c {
            StreamCommand::Request { processor } => {
                s.push_str(&format!("R {processor}\n"));
            }
            StreamCommand::Release { processor } => {
                s.push_str(&format!("F {processor}\n"));
            }
            StreamCommand::Stats => s.push_str("S\n"),
        }
    }
    s
}

/// Why a command-log line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecErrorKind {
    /// The op had no processor token (`R` alone on a line).
    MissingProcessor,
    /// The processor token is not a plain decimal number. Strict: only
    /// ASCII digits are accepted, so sign prefixes (`+3`), separators, and
    /// overflow all land here with the offending token.
    BadProcessor(String),
    /// Extra tokens followed the processor (`R 3 4`).
    TrailingTokens,
    /// The op is neither `R` nor `F`.
    UnknownOp(String),
}

/// A typed command-log parse error: which 1-based line, and what is wrong
/// with it. Replaces the earlier stringly-typed errors so the service can
/// reject malformed replays with a precise diagnostic instead of skipping
/// or misreading lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// 1-based line number in the input text.
    pub line: usize,
    /// What is wrong with the line.
    pub kind: CodecErrorKind,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            CodecErrorKind::MissingProcessor => write!(f, "missing processor"),
            CodecErrorKind::BadProcessor(tok) => write!(f, "bad processor {tok:?}"),
            CodecErrorKind::TrailingTokens => write!(f, "trailing tokens"),
            CodecErrorKind::UnknownOp(op) => write!(f, "unknown op {op:?}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Parse the `R <p>` / `F <p>` / `S` line format (blank lines and `#`
/// comment lines are skipped). Malformed lines — unknown ops, missing or
/// non-decimal processor tokens, trailing tokens — are typed
/// [`CodecError`]s naming the offending 1-based line; nothing is silently
/// skipped or coerced.
pub fn parse_commands(text: &str) -> Result<Vec<StreamCommand>, CodecError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let fail = |kind| CodecError { line: i + 1, kind };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().unwrap_or("");
        if op == "S" {
            if parts.next().is_some() {
                return Err(fail(CodecErrorKind::TrailingTokens));
            }
            out.push(StreamCommand::Stats);
            continue;
        }
        let tok = parts
            .next()
            .ok_or_else(|| fail(CodecErrorKind::MissingProcessor))?;
        // Strict decimal: `usize::from_str` would accept a `+` prefix,
        // silently normalizing a malformed log.
        if tok.is_empty() || !tok.bytes().all(|b| b.is_ascii_digit()) {
            return Err(fail(CodecErrorKind::BadProcessor(tok.to_string())));
        }
        let p: usize = tok
            .parse()
            .map_err(|_| fail(CodecErrorKind::BadProcessor(tok.to_string())))?;
        if parts.next().is_some() {
            return Err(fail(CodecErrorKind::TrailingTokens));
        }
        match op {
            "R" => out.push(StreamCommand::Request { processor: p }),
            "F" => out.push(StreamCommand::Release { processor: p }),
            other => return Err(fail(CodecErrorKind::UnknownOp(other.to_string()))),
        }
    }
    Ok(out)
}

/// The canonical decision-log line for decision `seq` (newline not
/// included). Everything that writes or compares decision logs goes through
/// this function.
pub fn format_decision(seq: u64, decision: &StreamDecision) -> String {
    match *decision {
        StreamDecision::Allocated {
            processor,
            resource,
        } => format!("{seq} alloc p{processor} r{resource}"),
        StreamDecision::Queued { processor } => format!("{seq} queue p{processor}"),
        StreamDecision::Released {
            processor,
            resource,
            promoted,
        } => match promoted {
            Some(pr) => format!(
                "{seq} release p{processor} r{resource} promote p{} r{}",
                pr.processor, pr.resource
            ),
            None => format!("{seq} release p{processor} r{resource}"),
        },
        StreamDecision::Withdrawn { processor } => format!("{seq} withdraw p{processor}"),
    }
}

/// Drive `commands` through a fresh warm-start [`IncrementalScheduler`] and
/// return the decision per scheduling command ([`StreamCommand::Stats`]
/// probes are introspection, not scheduling — they are skipped and produce
/// no decision). The transformation graph is built once; every decision is
/// a single cancel and/or augmentation on the retained flow.
pub fn replay_incremental(
    net: &Network,
    backend: IncrementalBackend,
    commands: &[StreamCommand],
) -> Result<Vec<StreamDecision>, SimError> {
    let mut inc = IncrementalScheduler::new(net, backend);
    let mut out = Vec::with_capacity(commands.len());
    for c in commands {
        let d = match *c {
            StreamCommand::Request { processor } => inc.request(processor),
            StreamCommand::Release { processor } => inc.release(processor),
            StreamCommand::Stats => continue,
        }
        .map_err(|error| SimError::Schedule {
            scheduler: backend.name(),
            error,
        })?;
        out.push(d);
    }
    Ok(out)
}

/// The batch baseline: after every command, re-solve the active set from
/// zero flow with the Theorem 2 max-flow scheduler (all resources offered on
/// the free network) and record the allocation count. This is both the
/// correctness oracle for the streaming invariant — the retained flow's
/// allocated count must match every prefix — and the "no warm start"
/// comparison the streaming benchmark row measures against.
pub fn replay_batch(net: &Network, commands: &[StreamCommand]) -> Result<Vec<usize>, SimError> {
    let scheduler = MaxFlowScheduler::default();
    let mut scratch = ScheduleScratch::new();
    let cs = CircuitState::new(net);
    let all: Vec<usize> = (0..net.num_resources()).collect();
    let mut active = vec![false; net.num_processors()];
    let mut out = Vec::with_capacity(commands.len());
    for c in commands {
        match *c {
            StreamCommand::Request { processor } => active[processor] = true,
            StreamCommand::Release { processor } => active[processor] = false,
            StreamCommand::Stats => continue,
        }
        let requests: Vec<usize> = (0..active.len()).filter(|&p| active[p]).collect();
        let problem = ScheduleProblem::homogeneous(&cs, &requests, &all);
        let solved = scheduler
            .try_schedule_reusing(&problem, &mut scratch)
            .map_err(|error| SimError::Schedule {
                scheduler: scheduler.name(),
                error,
            })?;
        out.push(solved.assignments.len());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_topology::builders::omega;

    #[test]
    fn generator_only_emits_valid_interleavings() {
        let cmds = generate_commands(8, 300, 0.7, 11, 3);
        assert_eq!(cmds.len(), 300);
        let mut active = [false; 8];
        for c in &cmds {
            match *c {
                StreamCommand::Request { processor } => {
                    assert!(!active[processor], "request while active");
                    active[processor] = true;
                }
                StreamCommand::Release { processor } => {
                    assert!(active[processor], "release while idle");
                    active[processor] = false;
                }
                StreamCommand::Stats => panic!("generator never emits probes"),
            }
        }
    }

    #[test]
    fn generator_is_deterministic_and_trial_split() {
        let a = generate_commands(8, 100, 0.5, 42, 0);
        let b = generate_commands(8, 100, 0.5, 42, 0);
        assert_eq!(a, b);
        let other_trial = generate_commands(8, 100, 0.5, 42, 1);
        assert_ne!(a, other_trial, "trials must draw independent streams");
    }

    #[test]
    fn load_knob_steers_the_mix() {
        let count_requests = |load: f64| {
            generate_commands(16, 400, load, 7, 0)
                .iter()
                .filter(|c| matches!(c, StreamCommand::Request { .. }))
                .count()
        };
        assert!(count_requests(0.9) > count_requests(0.1));
    }

    #[test]
    fn codec_round_trips() {
        let cmds = generate_commands(8, 64, 0.6, 5, 0);
        let text = encode_commands(&cmds);
        assert_eq!(parse_commands(&text).unwrap(), cmds);
        // Comments and blank lines are transparent.
        let commented = format!("# recorded stream\n\n{text}");
        assert_eq!(parse_commands(&commented).unwrap(), cmds);
        // Stats probes round-trip as bare `S` lines.
        let probed = with_stats_every(&cmds, 16);
        let text = encode_commands(&probed);
        assert!(text.contains("\nS\n"));
        assert_eq!(parse_commands(&text).unwrap(), probed);
    }

    #[test]
    fn stats_interleaving_is_periodic_and_replay_transparent() {
        let cmds = generate_commands(8, 100, 0.7, 5, 0);
        let probed = with_stats_every(&cmds, 25);
        assert_eq!(probed.len(), 104, "one probe per 25 commands");
        assert_eq!(probed[25], StreamCommand::Stats);
        assert_eq!(*probed.last().unwrap(), StreamCommand::Stats);
        assert_eq!(with_stats_every(&cmds, 0), cmds, "0 disables probing");
        assert_eq!(StreamCommand::Stats.processor(), None);
        // Replays make the same decisions with and without probes.
        let net = omega(8).unwrap();
        let plain = replay_incremental(&net, IncrementalBackend::MaxFlow, &cmds).unwrap();
        let with_probes = replay_incremental(&net, IncrementalBackend::MaxFlow, &probed).unwrap();
        assert_eq!(plain, with_probes);
        assert_eq!(
            replay_batch(&net, &cmds).unwrap(),
            replay_batch(&net, &probed).unwrap()
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert_eq!(
            parse_commands("R").unwrap_err(),
            CodecError {
                line: 1,
                kind: CodecErrorKind::MissingProcessor
            }
        );
        assert_eq!(
            parse_commands("R x").unwrap_err(),
            CodecError {
                line: 1,
                kind: CodecErrorKind::BadProcessor("x".to_string())
            }
        );
        assert_eq!(
            parse_commands("Q 3").unwrap_err(),
            CodecError {
                line: 1,
                kind: CodecErrorKind::UnknownOp("Q".to_string())
            }
        );
        assert_eq!(
            parse_commands("R 3 4").unwrap_err(),
            CodecError {
                line: 1,
                kind: CodecErrorKind::TrailingTokens
            }
        );
        // `S` takes no operand.
        assert_eq!(
            parse_commands("S 3").unwrap_err(),
            CodecError {
                line: 1,
                kind: CodecErrorKind::TrailingTokens
            }
        );
        // `usize::from_str` accepts a sign prefix; the codec must not.
        assert_eq!(
            parse_commands("R 0\nF +3").unwrap_err(),
            CodecError {
                line: 2,
                kind: CodecErrorKind::BadProcessor("+3".to_string())
            }
        );
        // Display keeps the `line N: ...` diagnostic contract.
        let e = parse_commands("# ok\nR 1\nbogus 2").unwrap_err();
        assert_eq!(e.to_string(), "line 3: unknown op \"bogus\"");
    }

    #[test]
    fn incremental_replay_matches_batch_counts_on_every_prefix() {
        let net = omega(8).unwrap();
        let cmds = generate_commands(8, 200, 0.8, 13, 0);
        for backend in [IncrementalBackend::MaxFlow, IncrementalBackend::MinCost] {
            let decisions = replay_incremental(&net, backend, &cmds).unwrap();
            let batch = replay_batch(&net, &cmds).unwrap();
            let mut allocated = 0usize;
            for (d, &want) in decisions.iter().zip(&batch) {
                match d {
                    StreamDecision::Allocated { .. } => allocated += 1,
                    StreamDecision::Released { promoted, .. } => {
                        allocated -= 1;
                        if promoted.is_some() {
                            allocated += 1;
                        }
                    }
                    StreamDecision::Queued { .. } | StreamDecision::Withdrawn { .. } => {}
                }
                assert_eq!(allocated, want, "{backend:?} diverged from batch");
            }
        }
    }

    #[test]
    fn decision_lines_are_stable() {
        use rsin_core::scheduler::PromotedRequest;
        assert_eq!(
            format_decision(
                3,
                &StreamDecision::Allocated {
                    processor: 1,
                    resource: 4
                }
            ),
            "3 alloc p1 r4"
        );
        assert_eq!(
            format_decision(9, &StreamDecision::Queued { processor: 2 }),
            "9 queue p2"
        );
        assert_eq!(
            format_decision(
                10,
                &StreamDecision::Released {
                    processor: 2,
                    resource: 0,
                    promoted: Some(PromotedRequest {
                        processor: 5,
                        resource: 0
                    })
                }
            ),
            "10 release p2 r0 promote p5 r0"
        );
        assert_eq!(
            format_decision(11, &StreamDecision::Withdrawn { processor: 7 }),
            "11 withdraw p7"
        );
    }
}
