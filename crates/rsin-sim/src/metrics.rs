//! Sample statistics for simulation outputs.

use rsin_obs::{bucket_ceil, bucket_floor, bucket_of, BUCKETS};

/// Fixed-point scale mapping f64 observations into the log2 buckets:
/// microsecond resolution for time-like values in simulation units.
const BUCKET_SCALE: f64 = 1e6;

/// Running mean/variance accumulator (Welford) with a normal-approximation
/// confidence interval, plus a log2-bucketed histogram (shared bucketing
/// with `rsin-obs`) for tail quantiles like [`Sample::p99`].
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Observation counts per log2 bucket of `x * BUCKET_SCALE` (negative
    /// observations clamp to bucket 0).
    buckets: [u32; BUCKETS],
}

impl Default for Sample {
    fn default() -> Self {
        Self::new()
    }
}

impl Sample {
    /// Empty sample.
    pub fn new() -> Self {
        Sample {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let scaled = if x > 0.0 {
            (x * BUCKET_SCALE) as u64
        } else {
            0
        };
        self.buckets[bucket_of(scaled)] += 1;
    }

    /// Merge another sample into this one (Chan et al. parallel Welford
    /// combination), as if `other`'s observations had been pushed after
    /// `self`'s.
    ///
    /// Count, min, max, histogram buckets — and therefore every quantile,
    /// including [`Sample::p99`] — are *exactly* what the single-stream
    /// computation produces. Mean and variance are algebraically equal but
    /// may differ from the push-by-push result in the last floating-point
    /// bits; what stays bit-identical is the merge itself: merging the same
    /// per-replica samples in the same order always yields the same bits,
    /// which is the contract replicated runs are built on (merge order is
    /// fixed to replica order, never completion order).
    pub fn merge(&mut self, other: &Sample) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / (n1 + n2));
        self.m2 += other.m2 + delta * delta * (n1 * n2 / (n1 + n2));
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, ob) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += ob;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for empty samples).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the ~95 % confidence interval (normal approximation;
    /// fine for the thousands of trials the experiments run).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile from the log2 histogram, linearly interpolated
    /// inside the containing bucket (so within one octave of the true order
    /// statistic) and clamped to the observed `[min, max]`. The extremes are
    /// exact: `q <= 0` returns the minimum and `q >= 1` the maximum, so
    /// `quantile(1.0)` is right even when all the mass sits in the top
    /// occupied octave. Returns 0 for an empty sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Nearest-rank rule: the order statistic at ceil(q * n), 1-based.
        let rank = (q * self.n as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let c = c as u64;
            if cum + c >= rank {
                let into = rank - cum; // 1..=c
                let lo = bucket_floor(i) as f64;
                let hi = bucket_ceil(i) as f64;
                // Midpoint rule: observation `into` of the c sharing this
                // bucket sits at fraction (into - 1/2) / c of the octave.
                // Using into / c instead pins a bucket's last observation to
                // its ceiling and biases every readout toward the octave top.
                let frac = (into as f64 - 0.5) / c as f64;
                let v = (lo + (hi - lo) * frac) / BUCKET_SCALE;
                return v.clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// 99th percentile of the observations (log2-histogram estimate).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Convenience summary for printing experiment rows.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean of the observations.
    pub mean: f64,
    /// 95 % confidence half-width.
    pub ci95: f64,
    /// 99th-percentile observation (log2-histogram estimate).
    pub p99: f64,
    /// Number of observations.
    pub n: u64,
}

impl From<&Sample> for Summary {
    fn from(s: &Sample) -> Self {
        Summary {
            mean: s.mean(),
            ci95: s.ci95_half_width(),
            p99: s.p99(),
            n: s.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = Sample::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_sample_is_safe() {
        let s = Sample::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Sample::new();
        let mut large = Sample::new();
        for i in 0..10 {
            small.push((i % 2) as f64);
        }
        for i in 0..1000 {
            large.push((i % 2) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn summary_conversion() {
        let mut s = Sample::new();
        s.push(1.0);
        s.push(3.0);
        let sum = Summary::from(&s);
        assert_eq!(sum.mean, 2.0);
        assert_eq!(sum.n, 2);
        assert!(sum.p99 > 0.0);
    }

    #[test]
    fn quantiles_track_the_tail() {
        let mut s = Sample::new();
        // 95 fast observations and 5 slow outliers: rank 99 of 100 falls in
        // the outlier bucket, so p99 must sit well above the median's octave.
        for _ in 0..95 {
            s.push(1.0);
        }
        for _ in 0..5 {
            s.push(1000.0);
        }
        let p50 = s.quantile(0.5);
        let p99 = s.p99();
        assert!((0.5..=2.0).contains(&p50), "p50 = {p50}");
        assert!(p99 > 100.0, "p99 = {p99}");
        assert!(p99 <= 1000.0, "clamped to max, got {p99}");
        assert!(s.quantile(1.0) <= s.max());
    }

    #[test]
    fn quantile_of_empty_and_negative_samples_is_safe() {
        let s = Sample::new();
        assert_eq!(s.quantile(0.99), 0.0);
        let mut s = Sample::new();
        s.push(-5.0);
        // Negative observations clamp into bucket 0 and the readout clamps
        // back to the observed range.
        assert_eq!(s.quantile(0.99), -5.0);
    }

    /// Deterministic synthetic stream with spread-out magnitudes so the
    /// histogram populates many octaves (exercises bucket-wise merging).
    fn stream(len: usize) -> Vec<f64> {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        (0..len)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                // Mantissa in [1, 2) times a power of two in [2^-4, 2^11].
                let mant = 1.0 + (x >> 40) as f64 / (1u64 << 24) as f64;
                let exp = ((x >> 8) % 16) as i32 - 4;
                mant * f64::powi(2.0, exp)
            })
            .collect()
    }

    /// Split a stream into K per-replica samples, merge them in replica
    /// order, and compare against the sequential single-stream pushes.
    fn merge_matches_sequential(k: usize) {
        let data = stream(501); // deliberately not divisible by 2 or 7
        let mut sequential = Sample::new();
        for &x in &data {
            sequential.push(x);
        }
        let chunk = data.len().div_ceil(k);
        let mut merged = Sample::new();
        for part in data.chunks(chunk) {
            let mut s = Sample::new();
            for &x in part {
                s.push(x);
            }
            merged.merge(&s);
        }
        // Exact fields: count, extremes, every histogram bucket, and hence
        // every quantile readout including p99.
        assert_eq!(merged.count(), sequential.count(), "k={k}");
        assert_eq!(merged.min().to_bits(), sequential.min().to_bits(), "k={k}");
        assert_eq!(merged.max().to_bits(), sequential.max().to_bits(), "k={k}");
        assert_eq!(merged.buckets, sequential.buckets, "k={k}");
        assert_eq!(merged.p99().to_bits(), sequential.p99().to_bits(), "k={k}");
        assert_eq!(
            merged.quantile(0.5).to_bits(),
            sequential.quantile(0.5).to_bits(),
            "k={k}"
        );
        // Algebraically-equal fields: tight relative tolerance.
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(rel(merged.mean(), sequential.mean()) < 1e-12, "k={k}");
        assert!(
            rel(merged.variance(), sequential.variance()) < 1e-9,
            "k={k}"
        );
        assert!(
            rel(merged.ci95_half_width(), sequential.ci95_half_width()) < 1e-9,
            "k={k}"
        );
    }

    #[test]
    fn merge_of_one_replica_matches_sequential() {
        merge_matches_sequential(1);
    }

    #[test]
    fn merge_of_two_replicas_matches_sequential() {
        merge_matches_sequential(2);
    }

    #[test]
    fn merge_of_seven_replicas_matches_sequential() {
        merge_matches_sequential(7);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut s = Sample::new();
        for x in [1.0, 2.5, 9.0] {
            s.push(x);
        }
        let snapshot = s;
        s.merge(&Sample::new());
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean().to_bits(), snapshot.mean().to_bits());
        let mut empty = Sample::new();
        empty.merge(&snapshot);
        assert_eq!(empty.count(), 3);
        assert_eq!(empty.mean().to_bits(), snapshot.mean().to_bits());
        assert_eq!(empty.buckets, snapshot.buckets);
    }

    #[test]
    fn merge_is_deterministic_for_fixed_order() {
        // The replicated-run contract: same parts, same order → same bits.
        let data = stream(100);
        let make = || {
            let mut merged = Sample::new();
            for part in data.chunks(17) {
                let mut s = Sample::new();
                for &x in part {
                    s.push(x);
                }
                merged.merge(&s);
            }
            merged
        };
        let a = make();
        let b = make();
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());
        assert_eq!(a.p99().to_bits(), b.p99().to_bits());
    }

    #[test]
    fn quantile_extremes_are_exact() {
        let mut s = Sample::new();
        for x in [3.0, 7.0, 700.0] {
            s.push(x);
        }
        assert_eq!(s.quantile(0.0), 3.0);
        assert_eq!(s.quantile(1.0), 700.0);
        // All mass in one octave: the top quantile must still be the exact
        // maximum, not the bucket ceiling.
        let mut one = Sample::new();
        for _ in 0..50 {
            one.push(1.5);
        }
        assert_eq!(one.quantile(1.0), 1.5);
        assert_eq!(one.quantile(0.999), 1.5); // clamped to max
    }

    #[test]
    fn quantile_of_values_straddling_one_bucket_stays_inside_it() {
        // 1.0 and 1.9 share the same octave of 1e6-scaled space; every
        // interior quantile must read out between them.
        let mut s = Sample::new();
        for _ in 0..10 {
            s.push(1.0);
            s.push(1.9);
        }
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let v = s.quantile(q);
            assert!((1.0..=1.9).contains(&v), "q={q} v={v}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Histogram quantile vs a sorted-vector oracle: cumulative bucket
        /// counts agree with cumulative sorted counts (bucketing is monotone
        /// in the value), so the estimate must land in the same octave as
        /// the exact nearest-rank order statistic — within a factor of two,
        /// plus the [min, max] clamp which only tightens it.
        #[test]
        fn quantile_matches_sorted_oracle_within_bucket_bounds(
            values in proptest::collection::vec(1e-3f64..5e3, 1..200),
            q in 0.01f64..0.99,
        ) {
            let mut s = Sample::new();
            for &x in &values {
                s.push(x);
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
            let exact = sorted[rank - 1];
            let est = s.quantile(q);
            let b = bucket_of((exact * BUCKET_SCALE) as u64);
            let lo = (bucket_floor(b) as f64 / BUCKET_SCALE).max(s.min());
            let hi = (bucket_ceil(b) as f64 / BUCKET_SCALE).min(s.max());
            proptest::prop_assert!(
                (lo * (1.0 - 1e-9)..=hi * (1.0 + 1e-9)).contains(&est),
                "q={} exact={} est={} bucket=[{}, {}]",
                q, exact, est, lo, hi
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut s = Sample::new();
        for i in 1..=500 {
            s.push(i as f64 * 0.01);
        }
        let qs: Vec<f64> = [0.1, 0.5, 0.9, 0.99]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }
}
