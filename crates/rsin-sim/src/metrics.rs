//! Sample statistics for simulation outputs.

/// Running mean/variance accumulator (Welford) with a normal-approximation
/// confidence interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sample {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Sample {
    /// Empty sample.
    pub fn new() -> Self {
        Sample {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for empty samples).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the ~95 % confidence interval (normal approximation;
    /// fine for the thousands of trials the experiments run).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Convenience summary for printing experiment rows.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean of the observations.
    pub mean: f64,
    /// 95 % confidence half-width.
    pub ci95: f64,
    /// Number of observations.
    pub n: u64,
}

impl From<&Sample> for Summary {
    fn from(s: &Sample) -> Self {
        Summary {
            mean: s.mean(),
            ci95: s.ci95_half_width(),
            n: s.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = Sample::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_sample_is_safe() {
        let s = Sample::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Sample::new();
        let mut large = Sample::new();
        for i in 0..10 {
            small.push((i % 2) as f64);
        }
        for i in 0..1000 {
            large.push((i % 2) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn summary_conversion() {
        let mut s = Sample::new();
        s.push(1.0);
        s.push(3.0);
        let sum = Summary::from(&s);
        assert_eq!(sum.mean, 2.0);
        assert_eq!(sum.n, 2);
    }
}
