//! A work-stealing-free worker pool for the outer axes of the experiment
//! grid.
//!
//! Every parallel surface in this crate — blocking trials, load sweeps,
//! faulted trials, replicated dynamic runs, and the per-scheduler pools of
//! [`compare_schedulers_pools`](crate::blocking::compare_schedulers_pools) —
//! shares the same execution shape:
//!
//! * `tasks` independent units of work, each a **pure function of its
//!   index** (the `(seed, trial)` / `(seed, replica)` RNG-stream convention
//!   makes trial `i` independent of which worker runs it and of whatever ran
//!   before it on that worker);
//! * a fixed set of scoped worker threads pulling the next index from one
//!   shared atomic cursor (no stealing, no channels, no new dependencies);
//! * results written into an index-addressed slot table and handed back in
//!   task order, so the caller's sequential reduction — Welford merges,
//!   table rows — is bit-identical for any thread count.
//!
//! The atomic cursor makes the *assignment* of tasks to workers dynamic
//! (good load balance when task costs vary, as they do across arrival
//! rates), while the slot table makes the *output* order static. Determinism
//! therefore never depends on scheduling luck.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Run `tasks` index-addressed work items on up to `threads` scoped workers,
/// giving each worker its own state built by `make_state` (a scheduling
/// scratch, usually). Returns the results in task order.
///
/// `run` must be a pure function of `(state, index)` up to the state's
/// warm-cache contents — i.e. the returned value must not depend on which
/// worker ran it or what that worker ran before. All callers in this crate
/// guarantee that via the seeded-stream convention, and the thread-count
/// invariance tests pin it.
///
/// With `threads <= 1` (or fewer than two tasks) everything runs inline on
/// the caller's thread with a single state — byte-for-byte the serial loop.
pub fn run_indexed_with<S, T, FS, F>(tasks: usize, threads: usize, make_state: FS, run: F) -> Vec<T>
where
    T: Send + Sync,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.max(1).min(tasks.max(1));
    if workers <= 1 {
        let mut state = make_state();
        return (0..tasks).map(|i| run(&mut state, i)).collect();
    }
    let slots: Vec<OnceLock<T>> = (0..tasks).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = make_state();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    let value = run(&mut state, i);
                    let set = slots[i].set(value);
                    debug_assert!(set.is_ok(), "cursor hands out each index once");
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task ran"))
        .collect()
}

/// [`run_indexed_with`] for stateless tasks.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(tasks, threads, || (), |_, i| run(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 3, 8, 33] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out.len(), 100);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn zero_and_single_task_edges() {
        assert!(run_indexed(0, 8, |i| i).is_empty());
        assert_eq!(run_indexed(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn per_worker_state_is_created_at_most_once_per_worker() {
        let created = AtomicUsize::new(0);
        let out = run_indexed_with(
            64,
            4,
            || {
                created.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |state, i| {
                *state += 1;
                i
            },
        );
        assert_eq!(out.len(), 64);
        // One state per spawned worker (4), or 1 on the serial path.
        let n = created.load(Ordering::Relaxed);
        assert!(n <= 4, "created {n} states for 4 workers");
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = (0..257).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        run_indexed(257, 5, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
