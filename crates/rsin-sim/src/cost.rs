//! Architecture cost model: monitor (software) vs distributed (token)
//! scheduling.
//!
//! Section IV: the monitor's overhead "is measured by the number of
//! instructions executed in the algorithm", the distributed architecture's
//! "in gate delays instead of instruction cycles" — and the latter "will
//! run at a much higher speed". This module fixes the two time constants so
//! the SPEEDUP experiment can put both on one axis. The defaults are
//! mid-1980s figures (a 1 MIPS minicomputer monitor vs a 20 MHz clocked
//! token network); the *ratio* is what matters and the experiment prints
//! results for several assumptions.

/// Time constants for the two architectures.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Nanoseconds per monitor instruction (default 1000 ns = 1 MIPS).
    pub instruction_ns: f64,
    /// Nanoseconds per token-propagation clock period (default 50 ns).
    pub clock_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            instruction_ns: 1000.0,
            clock_ns: 50.0,
        }
    }
}

impl CostModel {
    /// Scheduling latency of the monitor architecture, in microseconds.
    pub fn monitor_us(&self, instructions: u64) -> f64 {
        instructions as f64 * self.instruction_ns / 1000.0
    }

    /// Scheduling latency of the distributed architecture, in microseconds.
    pub fn distributed_us(&self, clocks: u64) -> f64 {
        clocks as f64 * self.clock_ns / 1000.0
    }

    /// Speedup of the distributed architecture over the monitor.
    pub fn speedup(&self, instructions: u64, clocks: u64) -> f64 {
        if clocks == 0 {
            return f64::INFINITY;
        }
        self.monitor_us(instructions) / self.distributed_us(clocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_constants_are_1980s_scale() {
        let m = CostModel::default();
        assert_eq!(m.monitor_us(1000), 1000.0);
        assert_eq!(m.distributed_us(100), 5.0);
    }

    #[test]
    fn speedup_is_ratio() {
        let m = CostModel::default();
        // 10_000 instructions vs 40 clocks: (10^7 ns) / (2000 ns) = 5000.
        assert!((m.speedup(10_000, 40) - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_clocks_is_infinite_speedup() {
        assert!(CostModel::default().speedup(10, 0).is_infinite());
    }
}
