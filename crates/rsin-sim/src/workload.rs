//! Workload generation: random scheduling snapshots and arrival processes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rsin_topology::{CircuitState, Network};

/// A random static snapshot: requesting processors, free resources, and a
/// circuit state with some links pre-occupied by established circuits.
#[derive(Debug)]
pub struct Snapshot<'n> {
    /// Occupancy overlay with the pre-established circuits.
    pub circuits: CircuitState<'n>,
    /// Requesting processors (disjoint from the circuits' sources).
    pub requesting: Vec<usize>,
    /// Free resources (disjoint from the circuits' destinations).
    pub free: Vec<usize>,
}

/// Deterministic RNG for a (seed, trial) pair so experiments are exactly
/// reproducible and trials are independent.
pub fn trial_rng(seed: u64, trial: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Draw a snapshot: `occupied_circuits` random processor→resource circuits
/// are established first (retrying blocked pairs), then `requests`
/// processors and `resources` resources are drawn uniformly from the
/// remainder.
pub fn random_snapshot<'n>(
    net: &'n Network,
    requests: usize,
    resources: usize,
    occupied_circuits: usize,
    rng: &mut StdRng,
) -> Snapshot<'n> {
    let np = net.num_processors();
    let nr = net.num_resources();
    let mut cs = CircuitState::new(net);
    let mut busy_p = vec![false; np];
    let mut busy_r = vec![false; nr];
    let mut placed = 0;
    let mut attempts = 0;
    while placed < occupied_circuits && attempts < 20 * occupied_circuits.max(1) {
        attempts += 1;
        let p = rng.random_range(0..np);
        let r = rng.random_range(0..nr);
        if busy_p[p] || busy_r[r] {
            continue;
        }
        if cs.connect(p, r).is_ok() {
            busy_p[p] = true;
            busy_r[r] = true;
            placed += 1;
        }
    }
    let mut procs: Vec<usize> = (0..np).filter(|&p| !busy_p[p]).collect();
    let mut ress: Vec<usize> = (0..nr).filter(|&r| !busy_r[r]).collect();
    procs.shuffle(rng);
    ress.shuffle(rng);
    procs.truncate(requests.min(procs.len()));
    ress.truncate(resources.min(ress.len()));
    procs.sort_unstable();
    ress.sort_unstable();
    Snapshot {
        circuits: cs,
        requesting: procs,
        free: ress,
    }
}

/// Exponential variate with the given rate (`λ`), via inverse transform —
/// the inter-arrival and service distribution of the dynamic simulation.
pub fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    assert!(rate > 0.0);
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Random priorities/preferences in `1..=levels` for a slice of ids.
pub fn random_levels(ids: &[usize], levels: u32, rng: &mut StdRng) -> Vec<(usize, u32)> {
    ids.iter()
        .map(|&i| (i, rng.random_range(1..=levels)))
        .collect()
}

/// Assign each id a uniformly random resource type in `0..types`.
pub fn random_types(ids: &[usize], types: usize, rng: &mut StdRng) -> Vec<(usize, usize)> {
    ids.iter()
        .map(|&i| (i, rng.random_range(0..types)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_topology::builders::omega;

    #[test]
    fn snapshot_is_reproducible() {
        let net = omega(8).unwrap();
        let mut r1 = trial_rng(1, 5);
        let mut r2 = trial_rng(1, 5);
        let s1 = random_snapshot(&net, 4, 4, 1, &mut r1);
        let s2 = random_snapshot(&net, 4, 4, 1, &mut r2);
        assert_eq!(s1.requesting, s2.requesting);
        assert_eq!(s1.free, s2.free);
        assert_eq!(s1.circuits.occupied_count(), s2.circuits.occupied_count());
    }

    #[test]
    fn snapshot_respects_disjointness() {
        let net = omega(8).unwrap();
        for trial in 0..50 {
            let mut rng = trial_rng(2, trial);
            let s = random_snapshot(&net, 3, 3, 2, &mut rng);
            assert!(s.requesting.len() <= 3);
            assert!(s.free.len() <= 3);
            // Requesting processors have free exit links (they hold no
            // pre-established circuit).
            for &p in &s.requesting {
                let l = net.processor_link(p).unwrap();
                assert!(s.circuits.is_free(l), "p{} holds a circuit", p + 1);
            }
            for &r in &s.free {
                let l = net.resource_link(r).unwrap();
                assert!(s.circuits.is_free(l), "r{} is connected", r + 1);
            }
        }
    }

    #[test]
    fn different_trials_differ() {
        let net = omega(8).unwrap();
        let mut any_diff = false;
        let mut prev: Option<Vec<usize>> = None;
        for trial in 0..10 {
            let mut rng = trial_rng(3, trial);
            let s = random_snapshot(&net, 4, 4, 0, &mut rng);
            if let Some(p) = &prev {
                any_diff |= *p != s.requesting;
            }
            prev = Some(s.requesting);
        }
        assert!(any_diff);
    }

    #[test]
    fn exponential_mean_roughly_inverse_rate() {
        let mut rng = trial_rng(4, 0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn levels_and_types_in_range() {
        let mut rng = trial_rng(5, 0);
        let ids = vec![0, 3, 5];
        for (_, lvl) in random_levels(&ids, 10, &mut rng) {
            assert!((1..=10).contains(&lvl));
        }
        for (_, ty) in random_types(&ids, 3, &mut rng) {
            assert!(ty < 3);
        }
    }
}
