//! Circuit vs. packet switching for resource tasks (Section II, point 1).
//!
//! The paper's model *chooses* circuit switching and argues for it twice:
//! "owing to the resource characteristics, a task cannot be processed until
//! it is completely received. The extra delay in breaking a task into
//! multiple packets may decrease the utilization of resources, and hence
//! increase the response time of the system" — and rerouting a blocked
//! packet costs more than rerouting a circuit request.
//!
//! This module backs that modelling decision with a small discrete-time
//! queueing comparison on the same multistage fabric:
//!
//! * **Circuit switching**: the task waits until a free path exists
//!   (retrying each slot), then streams its `L` units over the reserved
//!   circuit — delivery at `wait + S + L` (pipeline fill + payload).
//! * **Packet switching**: the task is cut into `L` packets that traverse
//!   `S` store-and-forward stages, each stage forwarding one packet per
//!   slot per output link and queueing the rest behind *background*
//!   packets arriving with rate `ρ` per link per slot. The resource starts
//!   only when the **last** packet arrives.
//!
//! The model is deliberately simple (independent geometric background
//! traffic, FIFO queues, fixed path) — it is a *model-choice ablation*, not
//! a reproduction target; DESIGN.md records it as such.

use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of one delivery comparison.
#[derive(Debug, Clone, Copy)]
pub struct SwitchingConfig {
    /// Task length in packets/slots.
    pub task_len: u64,
    /// Stages the path crosses.
    pub stages: u64,
    /// Background load per link per slot, `0.0..1.0`.
    pub background: f64,
    /// Probability that a circuit-setup attempt finds the path blocked by
    /// background circuits (per slot).
    pub circuit_block_prob: f64,
}

/// Delivery times of the same task under both disciplines.
#[derive(Debug, Clone, Copy)]
pub struct SwitchingOutcome {
    /// Slot at which the circuit-switched task is fully received.
    pub circuit_delivery: u64,
    /// Slot at which the packet-switched task is fully received.
    pub packet_delivery: u64,
}

/// Simulate one task delivery under both disciplines with a shared RNG.
pub fn compare_once(cfg: &SwitchingConfig, rng: &mut StdRng) -> SwitchingOutcome {
    // Circuit switching: geometric wait for a free path, then stream.
    let mut wait = 0u64;
    while rng.random_range(0.0..1.0) < cfg.circuit_block_prob {
        wait += 1;
    }
    let circuit_delivery = wait + cfg.stages + cfg.task_len;

    // Packet switching: track each packet's arrival time at each stage.
    // `free_at[s]` = first slot at which stage s's output link is free for
    // our traffic (background packets occupy it with probability
    // `background` each slot).
    let mut delivery_last = 0u64;
    let mut prev_departure = vec![0u64; cfg.stages as usize];
    for p in 0..cfg.task_len {
        // Packet p is injected at slot p.
        let mut t = p;
        for stage_departure in prev_departure.iter_mut() {
            // FIFO behind our own earlier packets at this stage...
            t = t.max(*stage_departure);
            // ...and behind background packets: each slot the link serves
            // background first with probability `background`.
            while rng.random_range(0.0..1.0) < cfg.background {
                t += 1;
            }
            t += 1; // the hop itself
            *stage_departure = t;
        }
        delivery_last = delivery_last.max(t);
    }
    SwitchingOutcome {
        circuit_delivery,
        packet_delivery: delivery_last,
    }
}

/// Mean delivery times over `trials` tasks.
pub fn compare_mean(cfg: &SwitchingConfig, trials: u64, rng: &mut StdRng) -> (f64, f64) {
    let mut c = 0.0;
    let mut p = 0.0;
    for _ in 0..trials {
        let o = compare_once(cfg, rng);
        c += o.circuit_delivery as f64;
        p += o.packet_delivery as f64;
    }
    (c / trials as f64, p / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::trial_rng;

    fn cfg(task_len: u64, background: f64, block: f64) -> SwitchingConfig {
        SwitchingConfig {
            task_len,
            stages: 3,
            background,
            circuit_block_prob: block,
        }
    }

    #[test]
    fn no_contention_both_are_pipeline_plus_payload() {
        let mut rng = trial_rng(1, 0);
        let o = compare_once(&cfg(10, 0.0, 0.0), &mut rng);
        assert_eq!(o.circuit_delivery, 3 + 10);
        assert_eq!(o.packet_delivery, 9 + 3); // last packet injected at slot 9, 3 hops
    }

    #[test]
    fn background_traffic_hurts_packets_not_circuits() {
        let mut rng = trial_rng(2, 0);
        let (c, p) = compare_mean(&cfg(20, 0.4, 0.0), 400, &mut rng);
        assert_eq!(c, 23.0, "reserved circuit is immune to per-link queueing");
        assert!(p > c, "packets queue behind background traffic: {p} vs {c}");
    }

    #[test]
    fn circuit_blocking_adds_setup_wait() {
        let mut rng = trial_rng(3, 0);
        let (c_free, _) = compare_mean(&cfg(20, 0.0, 0.0), 400, &mut rng);
        let mut rng = trial_rng(3, 1);
        let (c_blocked, _) = compare_mean(&cfg(20, 0.0, 0.5), 400, &mut rng);
        assert!(c_blocked > c_free);
        // Geometric(0.5) wait ≈ 1 extra slot on average.
        assert!(
            (c_blocked - c_free - 1.0).abs() < 0.3,
            "{c_blocked} vs {c_free}"
        );
    }

    #[test]
    fn crossover_favours_circuits_for_long_tasks_under_load() {
        // The paper's argument: resource tasks (long, must fully arrive)
        // prefer circuits once the fabric carries load.
        let mut rng = trial_rng(4, 0);
        let (c, p) = compare_mean(
            &SwitchingConfig {
                task_len: 50,
                stages: 4,
                background: 0.3,
                circuit_block_prob: 0.3,
            },
            400,
            &mut rng,
        );
        assert!(c < p, "circuit {c} should beat packet {p} for long tasks");
    }

    #[test]
    fn short_tasks_at_light_load_are_close() {
        let mut rng = trial_rng(5, 0);
        let (c, p) = compare_mean(&cfg(2, 0.05, 0.05), 2000, &mut rng);
        assert!((c - p).abs() < 1.5, "short tasks: {c} vs {p}");
    }
}
