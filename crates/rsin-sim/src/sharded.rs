//! Sharded-system experiments: pooled hierarchical scheduling, flat-oracle
//! conformance trials, and a streaming session over a sharded MRSIN.
//!
//! The scheduling logic lives in
//! [`rsin_core::scheduler::hierarchical`]; this module supplies the
//! execution and measurement shell around it:
//!
//! * [`schedule_pooled`] — one hierarchical cycle with the per-shard solves
//!   fanned out on a fixed-width [`crate::pool`] and reduced in sequential
//!   shard order, bit-identical to the serial
//!   [`HierarchicalScheduler::schedule`] at any pool width;
//! * [`run_sharded_trials`] / [`run_flat_trials`] — Monte-Carlo blocking
//!   trials of the hierarchical scheduler and of the flat Theorem-2 fresh
//!   solve on the *same* `(seed, trial)` snapshots, for conformance and
//!   speedup comparisons;
//! * [`run_paired_trials`] — per-trial `(hierarchical, flat)` allocation
//!   pairs, the raw material of the `hier ≤ flat` conformance gates;
//! * [`compare_sharded_pools`] — the sharded analogue of
//!   [`crate::blocking::compare_schedulers_pools`]: hierarchical and flat
//!   rows each on their own worker pool, finishing in max-of-rows
//!   wall-clock;
//! * [`ShardedSession`] — a long-lived streaming session: one warm
//!   [`IncrementalScheduler`] per shard plus a persistent global circuit
//!   state, admitting each arrival to its home shard when capacity remains
//!   and borrowing a port on a spare shard (over a reserved global circuit)
//!   otherwise.

use crate::metrics::{Sample, Summary};
use crate::workload::trial_rng;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rsin_core::model::{ScheduleOutcome, ScheduleProblem};
use rsin_core::scheduler::hierarchical::{
    HierarchicalOutcome, HierarchicalScheduler, InterShardPolicy,
};
use rsin_core::scheduler::{
    IncrementalBackend, IncrementalScheduler, MaxFlowScheduler, PromotedRequest, ScheduleError,
    ScheduleScratch, Scheduler, StreamDecision,
};
use rsin_topology::{CircuitId, CircuitState, LinkId, Network, ShardedNetwork};
use std::collections::VecDeque;

/// One hierarchical cycle with stage-2 fanned out on a `shard_pool`-wide
/// worker pool: place, solve every shard concurrently, reduce in
/// sequential shard order. Bit-identical to
/// [`HierarchicalScheduler::schedule`] for every pool width (the reduction
/// order, not the solve order, fixes the result).
pub fn schedule_pooled(
    h: &HierarchicalScheduler<'_>,
    requests: &[usize],
    free: &[usize],
    shard_pool: usize,
) -> Result<HierarchicalOutcome, ScheduleError> {
    let placement = h.place(requests, free)?;
    let outcomes: Vec<ScheduleOutcome> =
        crate::pool::run_indexed(h.shards(), shard_pool, |s| h.solve_shard(&placement, s))
            .into_iter()
            .collect::<Result<_, _>>()?;
    h.reduce(&placement, &outcomes)
}

/// Parameters of a sharded Monte-Carlo experiment.
#[derive(Debug, Clone, Copy)]
pub struct ShardedTrialConfig {
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Requesting processors per trial (global ports, drawn uniformly).
    pub requests: usize,
    /// Free resources per trial (global ports, drawn uniformly).
    pub free: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// Aggregated results of a sharded experiment.
#[derive(Debug, Clone, Copy)]
pub struct ShardedStats {
    /// Blocking fraction `1 − allocated / min(requests, free)`.
    pub blocking: Summary,
    /// Resources allocated per trial.
    pub allocated: Summary,
    /// Requests placed on a non-home shard per trial (always 0 for the
    /// flat oracle).
    pub remote: Summary,
    /// Requests the inter-shard stage could not place per trial (always 0
    /// for the flat oracle).
    pub stage1_blocked: Summary,
    /// True iff every observed per-shard transformation-graph build count
    /// was exactly 1 (vacuously true for the flat oracle, whose scratch is
    /// one graph with the same invariant).
    pub rebuilds_ok: bool,
}

/// Per-trial record; kept so trials can be farmed out and reduced in trial
/// order (see [`crate::pool`]).
#[derive(Debug, Clone, Copy)]
struct ShardedTrialResult {
    blocking: f64,
    allocated: f64,
    remote: f64,
    stage1_blocked: f64,
    rebuilds_ok: bool,
}

/// Draw one trial's request and free sets: uniform global ports, sorted
/// ascending. A pure function of the RNG stream.
pub fn sharded_snapshot(
    total_ports: usize,
    requests: usize,
    free: usize,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<usize>) {
    let mut draw = |k: usize| -> Vec<usize> {
        let mut ports: Vec<usize> = (0..total_ports).collect();
        ports.shuffle(rng);
        ports.truncate(k.min(total_ports));
        ports.sort_unstable();
        ports
    };
    let requesting = draw(requests);
    let free = draw(free);
    (requesting, free)
}

fn reduce_trials(results: &[ShardedTrialResult]) -> ShardedStats {
    // Sequential reduction in trial order (Welford is not associative).
    let mut blocking = Sample::new();
    let mut allocated = Sample::new();
    let mut remote = Sample::new();
    let mut stage1 = Sample::new();
    let mut rebuilds_ok = true;
    for r in results {
        blocking.push(r.blocking);
        allocated.push(r.allocated);
        remote.push(r.remote);
        stage1.push(r.stage1_blocked);
        rebuilds_ok &= r.rebuilds_ok;
    }
    ShardedStats {
        blocking: Summary::from(&blocking),
        allocated: Summary::from(&allocated),
        remote: Summary::from(&remote),
        stage1_blocked: Summary::from(&stage1),
        rebuilds_ok,
    }
}

/// Monte-Carlo trials of the hierarchical scheduler: `threads` workers pull
/// trials from a shared cursor, each owning one [`HierarchicalScheduler`]
/// (so each worker's per-shard scratches are built once and reused), and
/// each trial fans its per-shard solves out on a `shard_pool`-wide pool.
///
/// Determinism contract: trial `i` is a pure function of `(cfg.seed, i)`,
/// results reduce sequentially in trial order, and the per-cycle reduction
/// is shard-ordered — the returned [`ShardedStats`] is bit-identical for
/// any `threads` and any `shard_pool`.
pub fn run_sharded_trials(
    net: &ShardedNetwork,
    policy: InterShardPolicy,
    cfg: &ShardedTrialConfig,
    threads: usize,
    shard_pool: usize,
) -> ShardedStats {
    let results = crate::pool::run_indexed_with(
        cfg.trials as usize,
        threads,
        || HierarchicalScheduler::new(net, policy),
        |h, trial| {
            let mut rng = trial_rng(cfg.seed, trial as u64);
            let (requests, free) =
                sharded_snapshot(net.num_ports(), cfg.requests, cfg.free, &mut rng);
            let denom = requests.len().min(free.len());
            let out = schedule_pooled(h, &requests, &free, shard_pool)
                .expect("hierarchical cycle failed on a well-formed snapshot");
            // Every cycle solves every shard (even empty ones), so after any
            // trial each shard of this worker has built exactly once — the
            // flag is a pure function of the trial, not of worker history.
            let rebuilds_ok = h.rebuilds_per_shard().iter().all(|&r| r == 1);
            ShardedTrialResult {
                blocking: if denom == 0 {
                    0.0
                } else {
                    1.0 - out.allocated() as f64 / denom as f64
                },
                allocated: out.allocated() as f64,
                remote: out.remote_placed as f64,
                stage1_blocked: out.stage1_blocked as f64,
                rebuilds_ok,
            }
        },
    );
    reduce_trials(&results)
}

/// The flat oracle on the same snapshots: a Theorem-2 fresh solve over the
/// flattened composition per trial, one single-threaded solver per worker.
/// Global ports number the flat network's processors and resources
/// directly, so trial `i` sees exactly the snapshot of
/// [`run_sharded_trials`] trial `i`.
pub fn run_flat_trials(flat: &Network, cfg: &ShardedTrialConfig, threads: usize) -> ShardedStats {
    let scheduler = MaxFlowScheduler::default();
    let results = crate::pool::run_indexed_with(
        cfg.trials as usize,
        threads,
        ScheduleScratch::new,
        |scratch, trial| {
            let mut rng = trial_rng(cfg.seed, trial as u64);
            let (requests, free) =
                sharded_snapshot(flat.num_processors(), cfg.requests, cfg.free, &mut rng);
            let denom = requests.len().min(free.len());
            let cs = CircuitState::new(flat);
            let problem = ScheduleProblem::homogeneous(&cs, &requests, &free);
            let out = scheduler.schedule_reusing(&problem, scratch);
            ShardedTrialResult {
                blocking: out.blocking_fraction(denom),
                allocated: out.allocated() as f64,
                remote: 0.0,
                stage1_blocked: 0.0,
                rebuilds_ok: scratch.rebuilds() == 1,
            }
        },
    );
    reduce_trials(&results)
}

/// Per-trial `(hierarchical allocated, flat allocated)` pairs on shared
/// snapshots — the conformance raw data: hierarchical must never exceed
/// flat, and stays above a configured fraction of it in aggregate.
pub fn run_paired_trials(
    net: &ShardedNetwork,
    flat: &Network,
    policy: InterShardPolicy,
    cfg: &ShardedTrialConfig,
    threads: usize,
) -> Vec<(usize, usize)> {
    crate::pool::run_indexed_with(
        cfg.trials as usize,
        threads,
        || {
            (
                HierarchicalScheduler::new(net, policy),
                ScheduleScratch::new(),
            )
        },
        |(h, scratch), trial| {
            let mut rng = trial_rng(cfg.seed, trial as u64);
            let (requests, free) =
                sharded_snapshot(net.num_ports(), cfg.requests, cfg.free, &mut rng);
            let hier = h
                .schedule(&requests, &free)
                .expect("hierarchical cycle failed on a well-formed snapshot");
            let cs = CircuitState::new(flat);
            let problem = ScheduleProblem::homogeneous(&cs, &requests, &free);
            let flat_out = MaxFlowScheduler::default().schedule_reusing(&problem, scratch);
            (hier.allocated(), flat_out.allocated())
        },
    )
}

/// The sharded comparison table: one row for the hierarchical scheduler
/// (pooled per-shard solves) and one for the flat fresh-solve oracle, each
/// row running on its own `threads_per_row`-worker pool — the sharded
/// analogue of [`crate::blocking::compare_schedulers_pools`]. Rows come
/// back `(name, stats)` in fixed order (hierarchical first) and every
/// statistic is bit-identical for any pool width.
pub fn compare_sharded_pools(
    net: &ShardedNetwork,
    flat: &Network,
    policy: InterShardPolicy,
    cfg: &ShardedTrialConfig,
    threads_per_row: usize,
    shard_pool: usize,
) -> Vec<(String, ShardedStats)> {
    crate::pool::run_indexed(2, 2, |i| {
        if i == 0 {
            (
                format!("hier-{}", policy.name()),
                run_sharded_trials(net, policy, cfg, threads_per_row, shard_pool),
            )
        } else {
            (
                "flat-maxflow".to_string(),
                run_flat_trials(flat, cfg, threads_per_row),
            )
        }
    })
}

/// Dynamic (discrete-event) simulation of a sharded system: flatten the
/// composition and run the standard [`crate::system::SystemSim`] on it.
/// The sharded entry point of the dynamic model — hierarchical placement
/// is a per-cycle concern, so the dynamic simulation exercises the flat
/// composed fabric.
pub fn run_sharded_dynamic(
    net: &ShardedNetwork,
    scheduler: &dyn Scheduler,
    cfg: crate::system::DynamicConfig,
) -> Result<crate::system::DynamicStats, rsin_topology::NetworkError> {
    let flat = net.flatten()?;
    let sim = crate::system::SystemSim::new(&flat, cfg);
    Ok(sim.run(scheduler))
}

/// Where an active origin currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OriginState {
    /// No active request.
    Idle,
    /// Waiting in the session-level overflow queue (no port anywhere).
    Overflow,
    /// Admitted to `shard` at local `port`; `circuit` holds the reserved
    /// global circuit for remote admissions.
    Active {
        shard: usize,
        port: usize,
        circuit: Option<CircuitId>,
    },
}

/// A long-lived streaming session over a sharded system: the two-stage
/// discipline applied per event instead of per batch cycle.
///
/// Each shard runs its own warm-start [`IncrementalScheduler`] over the
/// local prototype (so per-shard `rebuilds()` stays 1 for the session's
/// lifetime), and cross-shard admissions reserve real circuits on a
/// persistent global [`CircuitState`]. An arrival is admitted to its home
/// shard while the shard has free resource capacity; otherwise a target
/// shard with genuine spare capacity is chosen under the
/// [`InterShardPolicy`] and the arrival borrows that shard's lowest idle
/// local port. Arrivals no shard can seat wait in a session-level FIFO and
/// are retried on every release.
///
/// All decisions are reported in **global** port numbering.
#[derive(Debug)]
pub struct ShardedSession<'n> {
    net: &'n ShardedNetwork,
    policy: InterShardPolicy,
    shards: Vec<IncrementalScheduler>,
    global: CircuitState<'n>,
    origin: Vec<OriginState>,
    /// `port_origin[shard][port]` — which origin occupies the local port.
    port_origin: Vec<Vec<Option<usize>>>,
    overflow: VecDeque<usize>,
    remote_active: usize,
}

impl<'n> ShardedSession<'n> {
    /// Fresh session: every shard empty, every global link free.
    pub fn new(
        net: &'n ShardedNetwork,
        policy: InterShardPolicy,
        backend: IncrementalBackend,
    ) -> Self {
        let n = net.spec().local_ports;
        ShardedSession {
            net,
            policy,
            shards: (0..net.shards())
                .map(|_| IncrementalScheduler::new(net.local(), backend))
                .collect(),
            global: CircuitState::new(net.global()),
            origin: vec![OriginState::Idle; net.num_ports()],
            port_origin: vec![vec![None; n]; net.shards()],
            overflow: VecDeque::new(),
            remote_active: 0,
        }
    }

    /// Origins currently holding an allocation, across all shards.
    pub fn allocated_count(&self) -> usize {
        self.shards.iter().map(|s| s.allocated_count()).sum()
    }

    /// Origins with an active but unallocated request: queued inside a
    /// shard or waiting in the session overflow FIFO.
    pub fn queued_count(&self) -> usize {
        self.shards.iter().map(|s| s.queued_count()).sum::<usize>() + self.overflow.len()
    }

    /// Origins waiting in the session-level overflow FIFO.
    pub fn overflow_count(&self) -> usize {
        self.overflow.len()
    }

    /// Origins currently seated on a non-home shard (each holds one
    /// reserved global circuit).
    pub fn remote_active(&self) -> usize {
        self.remote_active
    }

    /// Where an origin is currently seated: `(shard, local port, remote)`.
    /// `None` when idle or in the overflow FIFO.
    pub fn origin_seat(&self, origin: usize) -> Option<(usize, usize, bool)> {
        match self.origin.get(origin)? {
            OriginState::Active {
                shard,
                port,
                circuit,
            } => Some((*shard, *port, circuit.is_some())),
            _ => None,
        }
    }

    /// Per-shard transformation-graph build counts; all ones for the
    /// session's lifetime.
    pub fn rebuilds_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.rebuilds()).collect()
    }

    /// Global circuits currently reserved for remote admissions.
    pub fn global_circuits(&self) -> usize {
        self.global.occupied_count()
    }

    /// Handle an arrival for global port `origin`. Returns the globalized
    /// decision — [`StreamDecision::Allocated`] or
    /// [`StreamDecision::Queued`] (the latter also when the arrival landed
    /// in the overflow FIFO). Malformed commands (unknown port, duplicate
    /// request) return a typed error and change nothing.
    pub fn request(&mut self, origin: usize) -> Result<StreamDecision, ScheduleError> {
        match self.origin.get(origin) {
            None => return Err(ScheduleError::UnknownProcessor(origin)),
            Some(OriginState::Idle) => {}
            Some(_) => return Err(ScheduleError::DuplicateRequest(origin)),
        }
        match self.admit(origin)? {
            Some(decision) => Ok(decision),
            None => {
                self.origin[origin] = OriginState::Overflow;
                self.overflow.push_back(origin);
                Ok(StreamDecision::Queued { processor: origin })
            }
        }
    }

    /// Handle a release for global port `origin`. Returns the globalized
    /// decisions: first the release itself ([`StreamDecision::Released`] or
    /// [`StreamDecision::Withdrawn`]), then one decision per overflow
    /// arrival the freed capacity admitted. A release for an idle origin
    /// returns a typed error and changes nothing.
    pub fn release(&mut self, origin: usize) -> Result<Vec<StreamDecision>, ScheduleError> {
        let state = *self
            .origin
            .get(origin)
            .ok_or(ScheduleError::UnknownProcessor(origin))?;
        match state {
            OriginState::Idle => Err(ScheduleError::ReleaseIdle(origin)),
            OriginState::Overflow => {
                self.overflow.retain(|&o| o != origin);
                self.origin[origin] = OriginState::Idle;
                Ok(vec![StreamDecision::Withdrawn { processor: origin }])
            }
            OriginState::Active {
                shard,
                port,
                circuit,
            } => {
                let n = self.net.spec().local_ports;
                let local = self.shards[shard].release(port)?;
                self.port_origin[shard][port] = None;
                self.origin[origin] = OriginState::Idle;
                if let Some(cid) = circuit {
                    self.global
                        .release(cid)
                        .map_err(|_| ScheduleError::Internal("global circuit already released"))?;
                    self.remote_active -= 1;
                }
                let first = match local {
                    StreamDecision::Withdrawn { .. } => {
                        StreamDecision::Withdrawn { processor: origin }
                    }
                    StreamDecision::Released {
                        resource, promoted, ..
                    } => StreamDecision::Released {
                        processor: origin,
                        resource: shard * n + resource,
                        promoted: match promoted {
                            None => None,
                            Some(PromotedRequest {
                                processor,
                                resource,
                            }) => Some(PromotedRequest {
                                processor: self.port_origin[shard][processor].ok_or(
                                    ScheduleError::Internal("promoted port has no origin"),
                                )?,
                                resource: shard * n + resource,
                            }),
                        },
                    },
                    _ => return Err(ScheduleError::Internal("release produced a non-release")),
                };
                let mut decisions = vec![first];
                // Retry the overflow FIFO once, in arrival order.
                let waiting: Vec<usize> = self.overflow.iter().copied().collect();
                for o in waiting {
                    if let Some(d) = self.admit(o)? {
                        self.overflow.retain(|&q| q != o);
                        decisions.push(d);
                    }
                }
                Ok(decisions)
            }
        }
    }

    /// Try to seat `origin`: home shard while it has free resource
    /// capacity, then a remote shard with spare capacity under the policy,
    /// then the home shard without capacity (local queueing). `None` when
    /// no shard has an idle port for it.
    fn admit(&mut self, origin: usize) -> Result<Option<StreamDecision>, ScheduleError> {
        let n = self.net.spec().local_ports;
        let home = origin / n;
        let own = origin % n;
        let home_port = if self.port_origin[home][own].is_none() {
            Some(own)
        } else {
            self.idle_port(home)
        };
        if let Some(port) = home_port {
            if self.has_capacity(home) {
                return self.seat(origin, home, port, None).map(Some);
            }
        }
        if let Some((t, path)) = self.pick_remote(home) {
            let cid = self.global.establish(&path)?;
            let port = self
                .idle_port(t)
                .ok_or(ScheduleError::Internal("picked shard has no idle port"))?;
            self.remote_active += 1;
            return self.seat(origin, t, port, Some(cid)).map(Some);
        }
        match home_port {
            Some(port) => self.seat(origin, home, port, None).map(Some),
            None => Ok(None),
        }
    }

    fn has_capacity(&self, shard: usize) -> bool {
        self.shards[shard].allocated_count() < self.net.spec().local_ports
    }

    fn idle_port(&self, shard: usize) -> Option<usize> {
        self.port_origin[shard].iter().position(|o| o.is_none())
    }

    /// Choose a remote target with genuine spare capacity and a routable
    /// global circuit, per the policy. Mirrors the batch scheduler's
    /// stage-1 pick, but against the session's persistent global state.
    fn pick_remote(&self, home: usize) -> Option<(usize, Vec<LinkId>)> {
        let s_count = self.net.shards();
        let viable = |t: usize| t != home && self.has_capacity(t) && self.idle_port(t).is_some();
        let route = |t: usize| -> Option<Vec<LinkId>> {
            let down: Vec<usize> = self.net.uplink_slots(t).collect();
            self.net
                .uplink_slots(home)
                .find_map(|up| self.global.find_path_to_any(up, &down).map(|(_, p)| p))
        };
        match self.policy {
            InterShardPolicy::TokenRing => (1..s_count).find_map(|d| {
                let t = (home + d) % s_count;
                if !viable(t) {
                    return None;
                }
                route(t).map(|path| (t, path))
            }),
            InterShardPolicy::MinCost => {
                let mut best: Option<(usize, Vec<LinkId>)> = None;
                for t in 0..s_count {
                    if !viable(t) {
                        continue;
                    }
                    if let Some(path) = route(t) {
                        if best.as_ref().is_none_or(|(_, b)| path.len() < b.len()) {
                            best = Some((t, path));
                        }
                    }
                }
                best
            }
        }
    }

    /// Submit `origin`'s request to `shard` at local `port` and globalize
    /// the decision.
    fn seat(
        &mut self,
        origin: usize,
        shard: usize,
        port: usize,
        circuit: Option<CircuitId>,
    ) -> Result<StreamDecision, ScheduleError> {
        let n = self.net.spec().local_ports;
        let decision = self.shards[shard].request(port)?;
        self.port_origin[shard][port] = Some(origin);
        self.origin[origin] = OriginState::Active {
            shard,
            port,
            circuit,
        };
        Ok(match decision {
            StreamDecision::Allocated { resource, .. } => StreamDecision::Allocated {
                processor: origin,
                resource: shard * n + resource,
            },
            StreamDecision::Queued { .. } => StreamDecision::Queued { processor: origin },
            _ => return Err(ScheduleError::Internal("request produced a non-arrival")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsin_topology::{GlobalTopology, ShardedSpec};

    fn sharded(shards: usize, local: usize, uplink: usize) -> ShardedNetwork {
        ShardedNetwork::new(ShardedSpec {
            shards,
            local_ports: local,
            uplink,
            global: GlobalTopology::Crossbar,
        })
        .unwrap()
    }

    #[test]
    fn pooled_cycle_matches_serial_bitwise() {
        let net = sharded(4, 8, 2);
        let h = HierarchicalScheduler::new(&net, InterShardPolicy::TokenRing);
        let requests: Vec<usize> = (0..20).collect();
        let free: Vec<usize> = (10..32).collect();
        let serial = h.schedule(&requests, &free).unwrap();
        for pool in [1, 2, 4, 8] {
            let pooled = schedule_pooled(&h, &requests, &free, pool).unwrap();
            assert_eq!(pooled, serial, "pool width {pool}");
        }
    }

    #[test]
    fn trials_are_thread_and_pool_invariant() {
        let net = sharded(2, 8, 2);
        let cfg = ShardedTrialConfig {
            trials: 23,
            requests: 10,
            free: 10,
            seed: 41,
        };
        let one = run_sharded_trials(&net, InterShardPolicy::TokenRing, &cfg, 1, 1);
        assert!(one.rebuilds_ok);
        for (threads, pool) in [(2, 1), (1, 4), (8, 2), (3, 3)] {
            let other = run_sharded_trials(&net, InterShardPolicy::TokenRing, &cfg, threads, pool);
            assert_eq!(one.blocking.mean.to_bits(), other.blocking.mean.to_bits());
            assert_eq!(one.blocking.ci95.to_bits(), other.blocking.ci95.to_bits());
            assert_eq!(one.allocated.mean.to_bits(), other.allocated.mean.to_bits());
            assert_eq!(one.remote.mean.to_bits(), other.remote.mean.to_bits());
            assert_eq!(
                one.stage1_blocked.mean.to_bits(),
                other.stage1_blocked.mean.to_bits()
            );
            assert!(other.rebuilds_ok);
        }
    }

    #[test]
    fn hierarchical_never_beats_the_flat_oracle() {
        let net = sharded(2, 8, 2);
        let flat = net.flatten().unwrap();
        let cfg = ShardedTrialConfig {
            trials: 40,
            requests: 12,
            free: 12,
            seed: 43,
        };
        for policy in [InterShardPolicy::TokenRing, InterShardPolicy::MinCost] {
            let pairs = run_paired_trials(&net, &flat, policy, &cfg, 2);
            assert_eq!(pairs.len(), 40);
            for (i, &(hier, flat_alloc)) in pairs.iter().enumerate() {
                assert!(
                    hier <= flat_alloc,
                    "{policy:?} trial {i}: hier {hier} > flat {flat_alloc}"
                );
            }
        }
    }

    #[test]
    fn comparison_table_is_ordered_and_consistent() {
        let net = sharded(2, 4, 1);
        let flat = net.flatten().unwrap();
        let cfg = ShardedTrialConfig {
            trials: 15,
            requests: 5,
            free: 5,
            seed: 47,
        };
        let rows = compare_sharded_pools(&net, &flat, InterShardPolicy::TokenRing, &cfg, 2, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "hier-token");
        assert_eq!(rows[1].0, "flat-maxflow");
        assert!(rows[0].1.allocated.mean <= rows[1].1.allocated.mean + 1e-12);
        assert!(rows[0].1.rebuilds_ok && rows[1].1.rebuilds_ok);
    }

    #[test]
    fn sharded_dynamic_runs_on_the_flat_composition() {
        let net = sharded(2, 4, 1);
        let cfg = crate::system::DynamicConfig {
            sim_time: 60.0,
            warmup: 10.0,
            ..Default::default()
        };
        let stats = run_sharded_dynamic(&net, &MaxFlowScheduler::default(), cfg).unwrap();
        assert!(stats.completed > 0);
    }

    #[test]
    fn session_keeps_traffic_home_while_capacity_lasts() {
        let net = sharded(2, 4, 2);
        let mut s = ShardedSession::new(
            &net,
            InterShardPolicy::TokenRing,
            IncrementalBackend::MaxFlow,
        );
        for origin in [0, 1, 4, 5] {
            let d = s.request(origin).unwrap();
            assert!(matches!(d, StreamDecision::Allocated { .. }), "{origin}");
        }
        assert_eq!(s.allocated_count(), 4);
        assert_eq!(s.remote_active(), 0);
        assert_eq!(s.global_circuits(), 0);
        // Releases return everything to idle.
        for origin in [0, 1, 4, 5] {
            let d = s.release(origin).unwrap();
            assert!(matches!(d[0], StreamDecision::Released { .. }));
        }
        assert_eq!(s.allocated_count(), 0);
        assert_eq!(s.rebuilds_per_shard(), vec![1, 1]);
    }

    #[test]
    fn full_load_stays_home_and_allocates_everything() {
        // Every origin requesting at once is exactly home capacity
        // everywhere: nothing goes remote, nothing queues.
        let net = sharded(2, 4, 2);
        let mut s = ShardedSession::new(
            &net,
            InterShardPolicy::TokenRing,
            IncrementalBackend::MaxFlow,
        );
        for origin in 0..8 {
            let d = s.request(origin).unwrap();
            assert!(matches!(d, StreamDecision::Allocated { .. }), "{origin}");
        }
        assert_eq!(s.allocated_count(), 8);
        assert_eq!(s.remote_active(), 0);
    }

    #[test]
    fn session_release_and_rerequest_round_trips() {
        // Ports and resources are 1:1, so a release frees both and the
        // re-request stays home; bookkeeping must agree with the shard
        // schedulers throughout. (The remote-borrow path needs a foreign
        // borrow holding the home port — exercised by the session
        // proptest's interleavings.)
        let net = sharded(2, 2, 1);
        let mut s = ShardedSession::new(
            &net,
            InterShardPolicy::TokenRing,
            IncrementalBackend::MaxFlow,
        );
        // Shard 0: both origins allocate.
        assert!(matches!(
            s.request(0).unwrap(),
            StreamDecision::Allocated { .. }
        ));
        assert!(matches!(
            s.request(1).unwrap(),
            StreamDecision::Allocated { .. }
        ));
        // Release origin 1: its port and resource free up. Now origin 1
        // re-requests — home has capacity, stays home.
        s.release(1).unwrap();
        let d = s.request(1).unwrap();
        assert!(matches!(d, StreamDecision::Allocated { .. }));
        assert_eq!(s.remote_active(), 0);
        assert_eq!(s.queued_count(), 0);
        // Occupancy bookkeeping agrees with the shard schedulers.
        assert_eq!(s.origin_seat(0), Some((0, 0, false)));
        assert_eq!(s.origin_seat(1), Some((0, 1, false)));
    }

    #[test]
    fn session_rejects_malformed_commands() {
        let net = sharded(2, 4, 1);
        let mut s = ShardedSession::new(
            &net,
            InterShardPolicy::TokenRing,
            IncrementalBackend::MaxFlow,
        );
        assert_eq!(s.request(8), Err(ScheduleError::UnknownProcessor(8)));
        assert_eq!(s.release(3), Err(ScheduleError::ReleaseIdle(3)));
        s.request(3).unwrap();
        assert_eq!(s.request(3), Err(ScheduleError::DuplicateRequest(3)));
    }
}
