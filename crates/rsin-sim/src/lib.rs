//! # rsin-sim — simulation of resource-sharing multiprocessors
//!
//! The measurement substrate that regenerates the paper's quantitative
//! claims (the original simulators, \[22\] and \[44\], are unavailable; this
//! crate rebuilds them from the Section II system model):
//!
//! * [`workload`] — random scheduling snapshots (who requests, what is
//!   free, which circuits pre-occupy links) and arrival processes;
//! * [`blocking`] — Monte-Carlo *static* experiments: average blocking
//!   probability of a scheduler on a topology, the metric behind "the
//!   average blocking probability can be as low as 2 percent … if a
//!   heuristic routing algorithm is used, then the average blocking
//!   probability increases to around 20 percent";
//! * [`system`] — a *dynamic* discrete-event simulation of the full model:
//!   Poisson task arrivals, one task transmitted at a time per processor,
//!   circuits released after transmission, resources busy until completion
//!   (model points 1–5), yielding utilization and response times;
//! * [`pool`] — the work-stealing-free worker pool every parallel
//!   experiment axis (trials, sweep points, fault trials, replicas, and
//!   per-scheduler comparison rows) runs on;
//! * [`replicate`] — replicated dynamic runs: independent `(seed, replica)`
//!   streams of one configuration, merged deterministically;
//! * [`sharded`] — sharded-system experiments: pooled hierarchical
//!   scheduling cycles, flat-oracle conformance trials, and the streaming
//!   [`sharded::ShardedSession`] over an MRSIN-of-MRSINs;
//! * [`stream`] — streaming command logs for the incremental scheduler:
//!   deterministic request/release generators, the `R`/`F` text codec, the
//!   canonical decision-log line, and warm-start vs batch replay helpers;
//! * [`metrics`] — sample statistics with confidence intervals;
//! * [`monitor`] — the centralized monitor architecture of Fig. 6, with
//!   its exact cycle semantics (mid-cycle arrivals and releases deferred);
//! * [`analytic`] — Patel's closed-form banyan acceptance model, for
//!   theory-vs-simulation calibration;
//! * [`packet`] — the circuit-vs-packet-switching model-choice ablation
//!   backing Section II's first modelling decision;
//! * [`cost`] — the architecture cost model comparing the monitor
//!   (instruction-counted software) against the distributed engine
//!   (clock-period-counted token propagation).
//!
//! ```
//! use rsin_sim::blocking::{BlockingConfig, run_blocking};
//! use rsin_core::scheduler::MaxFlowScheduler;
//! use rsin_topology::builders::omega;
//!
//! let net = omega(8).unwrap();
//! let cfg = BlockingConfig { trials: 200, requests: 5, resources: 5, occupied_circuits: 0, seed: 7 };
//! let stats = run_blocking(&net, &MaxFlowScheduler::default(), &cfg);
//! assert!(stats.blocking.mean < 0.2, "optimal scheduling blocks rarely on a free Omega");
//! ```

pub mod analytic;
pub mod blocking;
pub mod cost;
pub mod metrics;
pub mod monitor;
pub mod packet;
pub mod pool;
pub mod replicate;
pub mod sharded;
pub mod stream;
pub mod system;
pub mod workload;

pub use blocking::{
    compare_schedulers_pools, compare_schedulers_threads, run_blocking, run_blocking_threads,
    BlockingConfig, BlockingStats,
};
pub use stream::{
    encode_commands, format_decision, generate_commands, parse_commands, replay_batch,
    replay_incremental, CodecError, CodecErrorKind, StreamCommand,
};

pub use replicate::{
    merge_dynamic, merge_faulted, run_replicated, run_replicated_faulted, run_replicated_probed,
    run_replicated_sweep, ReplicatedFaultedStats, ReplicatedStats,
};
pub use sharded::{
    compare_sharded_pools, run_flat_trials, run_paired_trials, run_sharded_dynamic,
    run_sharded_trials, schedule_pooled, sharded_snapshot, ShardedSession, ShardedStats,
    ShardedTrialConfig,
};
pub use system::{
    fault_plan_seed, plan_for_model, run_faulted_trials, run_faulted_trials_model,
    run_faulted_trials_policy, run_faulted_trials_policy_probed, run_faulted_trials_probed,
    run_sweep, DegradedPolicy, DynamicConfig, DynamicStats, FaultModel, FaultedStats, SimError,
    SystemSim,
};
