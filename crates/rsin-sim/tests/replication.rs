//! Property test pinning the replicated-run determinism contract: the
//! merged statistics of `run_replicated` are **bit-identical** for any
//! worker-thread count, across random configurations and replica counts.
//!
//! This is the in-process half of the determinism gate; the CI
//! `determinism` job byte-compares the exported JSON of the `dynamic` and
//! `faults` binaries at 1 and 8 threads on top of it.

use proptest::prelude::*;
use rsin_core::scheduler::MaxFlowScheduler;
use rsin_sim::metrics::Summary;
use rsin_sim::replicate::run_replicated;
use rsin_sim::system::DynamicConfig;
use rsin_topology::builders::omega;

fn assert_summary_bits(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{what}.mean");
    assert_eq!(a.ci95.to_bits(), b.ci95.to_bits(), "{what}.ci95");
    assert_eq!(a.p99.to_bits(), b.p99.to_bits(), "{what}.p99");
    assert_eq!(a.n, b.n, "{what}.n");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replicated dynamic stats do not depend on the thread count: each
    /// replica is a pure function of `(seed, replica)` and the merge runs
    /// sequentially in replica order, so 1, 2, 3, and 8 workers must
    /// produce the same bits.
    #[test]
    fn replicated_dynamic_stats_are_thread_count_invariant(
        seed in 0u64..1000,
        rate_milli in 100u64..900,
        replicas in 1usize..6,
    ) {
        let net = omega(8).unwrap();
        let cfg = DynamicConfig {
            arrival_rate: rate_milli as f64 / 1000.0,
            sim_time: 80.0,
            warmup: 10.0,
            seed,
            ..DynamicConfig::default()
        };
        let scheduler = MaxFlowScheduler::default();
        let serial = run_replicated(&net, &scheduler, &cfg, replicas, 1);
        for threads in [2usize, 3, 8] {
            let parallel = run_replicated(&net, &scheduler, &cfg, replicas, threads);
            prop_assert_eq!(serial.replicas, parallel.replicas);
            prop_assert_eq!(serial.completed, parallel.completed);
            prop_assert_eq!(serial.cycles, parallel.cycles);
            assert_summary_bits(&serial.response, &parallel.response, "response");
            assert_summary_bits(&serial.utilization, &parallel.utilization, "utilization");
            assert_summary_bits(&serial.mean_queue, &parallel.mean_queue, "mean_queue");
            assert_summary_bits(&serial.mean_blocking, &parallel.mean_blocking, "mean_blocking");
        }
    }
}
