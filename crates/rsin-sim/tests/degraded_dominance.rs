//! Dominance regression for priced degraded-mode scheduling.
//!
//! Both retry policies are evaluated on the *same* degraded scheduling
//! problem — an omega-8 state carrying a seeded fault-plan prefix — so the
//! comparison is paired, not trajectory-coupled (two free-running
//! simulations diverge after their first differing recovery and their
//! run totals stop being comparable). On a paired problem the dominance is
//! Theorem-3 backed: the residual min-cost solve recovers a *maximum* set
//! of blocked requests (never sheds more than the greedy BFS retry) and,
//! when both recover equally many, at no greater Transformation-2 cost.
//!
//! The per-(rate, scheduler) cell aggregates are pinned as a committed
//! snapshot so any behavioural drift shows up as a readable diff
//! (regenerate with `UPDATE_SNAPSHOTS=1 cargo test -p rsin-sim --test
//! degraded_dominance`).

use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{
    AddressMappedScheduler, GreedyScheduler, MaxFlowScheduler, RequestOrder, ScheduleScratch,
    Scheduler,
};
use rsin_topology::builders::omega;
use rsin_topology::{CircuitState, FaultPlan, FaultPlanConfig};

const SEED: u64 = 42;
const TRIALS: u64 = 6;
const RATES: [f64; 3] = [0.002, 0.005, 0.01];
const HORIZONS: [f64; 4] = [60.0, 150.0, 240.0, 300.0];
const MEAN_REPAIR: f64 = 25.0;
const LEVELS: u32 = 4;

#[derive(Default)]
struct Cell {
    problems: u64,
    degraded: u64,
    recovered: u64,
    shed: u64,
    recovery_cost: i64,
}

#[test]
fn priced_retry_dominates_bfs_on_fixed_grid() {
    let net = omega(8).unwrap();
    let schedulers: [(&str, Box<dyn Scheduler>); 3] = [
        ("max-flow", Box::new(MaxFlowScheduler::default())),
        (
            "greedy",
            Box::new(GreedyScheduler::new(RequestOrder::Shuffled(17))),
        ),
        ("addr-map", Box::new(AddressMappedScheduler::new(SEED))),
    ];

    let mut table = String::new();
    table.push_str(&format!(
        "network=omega-8 trials={TRIALS} horizons={HORIZONS:?} mean_repair={MEAN_REPAIR} \
         levels={LEVELS} seed={SEED}\n",
    ));
    table.push_str(
        "scheduler  rate    policy  problems  degraded  recovered  shed  recovery_cost\n",
    );

    for (name, scheduler) in &schedulers {
        // One scratch per scheduler, shared across every cell: fault
        // toggles and occupancy are capacity patches, never rebuilds.
        let mut scratch = ScheduleScratch::new();
        for rate in RATES {
            let fault_cfg = FaultPlanConfig::links(rate, MEAN_REPAIR, 300.0);
            let mut bfs_cell = Cell::default();
            let mut priced_cell = Cell::default();
            for trial in 0..TRIALS {
                let plan = FaultPlan::generate(&net, &fault_cfg, SEED ^ (trial * 977));
                for until in HORIZONS {
                    let mut cs = CircuitState::new(&net);
                    plan.apply_until(until, &mut cs);
                    let bits = trial.wrapping_mul(31).wrapping_add(until as u64);
                    let req: Vec<(usize, u32)> = (0..8)
                        .filter(|p| (bits >> (p % 6)) & 1 == 0)
                        .map(|p| (p, 1 + (p as u32) % LEVELS))
                        .collect();
                    let free: Vec<(usize, u32)> = (0..8)
                        .filter(|r| (bits >> ((r + 3) % 7)) & 1 == 1)
                        .map(|r| (r, 1 + (r as u32) % LEVELS))
                        .collect();
                    let problem = ScheduleProblem::with_priorities(&cs, &req, &free);
                    let bfs = scheduler
                        .try_schedule_degraded(&problem, &mut scratch)
                        .unwrap();
                    let priced = scheduler
                        .try_schedule_degraded_priced(&problem, &mut scratch)
                        .unwrap();
                    // Paired per-problem dominance (Theorem 3 on the
                    // residual): the min-cost retry recovers a maximum set.
                    assert!(
                        priced.shed <= bfs.shed,
                        "{name} rate {rate} trial {trial} until {until}: \
                         priced shed {} > bfs shed {}",
                        priced.shed,
                        bfs.shed,
                    );
                    if priced.recovered == bfs.recovered {
                        assert!(
                            priced.recovery_cost <= bfs.recovery_cost,
                            "{name} rate {rate} trial {trial} until {until}: equal \
                             recovery but priced cost {} > bfs cost {}",
                            priced.recovery_cost,
                            bfs.recovery_cost,
                        );
                    }
                    let degraded = u64::from(bfs.shed + bfs.recovered > 0);
                    for (cell, recovered, shed, cost) in [
                        (&mut bfs_cell, bfs.recovered, bfs.shed, bfs.recovery_cost),
                        (
                            &mut priced_cell,
                            priced.recovered,
                            priced.shed,
                            priced.recovery_cost,
                        ),
                    ] {
                        cell.problems += 1;
                        cell.degraded += degraded;
                        cell.recovered += recovered as u64;
                        cell.shed += shed as u64;
                        cell.recovery_cost += cost;
                    }
                }
            }
            // Cell-level dominance: never more shed, never a dearer total.
            assert!(priced_cell.shed <= bfs_cell.shed, "{name} rate {rate}");
            assert!(
                priced_cell.recovery_cost <= bfs_cell.recovery_cost,
                "{name} rate {rate}: priced cell cost {} > bfs {}",
                priced_cell.recovery_cost,
                bfs_cell.recovery_cost,
            );
            for (policy, cell) in [("bfs", &bfs_cell), ("priced", &priced_cell)] {
                table.push_str(&format!(
                    "{name:<9}  {rate:<6}  {policy:<6}  {:<8}  {:<8}  {:<9}  {:<4}  {}\n",
                    cell.problems, cell.degraded, cell.recovered, cell.shed, cell.recovery_cost,
                ));
            }
        }
    }

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/snapshots/degraded_dominance.txt"
    );
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(path, &table).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(path)
        .expect("missing snapshot; regenerate with UPDATE_SNAPSHOTS=1");
    assert_eq!(
        committed, table,
        "dominance table drifted from the committed snapshot; if the change \
         is intentional, regenerate with UPDATE_SNAPSHOTS=1",
    );
}
