//! FIG3_4 — Figs. 3 and 4: flow augmentation is resource reallocation.
//!
//! The 4-processor example: an initial flow `s-a-d-t` (mapping
//! {(pa, rd)}) blocks pc's request for rb; the augmenting path
//! `s-c-d-a-b-t` cancels the arc `a→d` and yields the mapping
//! {(pa, rb), (pc, rd)} with both resources allocated.

use rsin_flow::graph::FlowNetwork;
use rsin_flow::max_flow::{solve, Algorithm};
use rsin_flow::path::decompose_unit_flow;

fn main() {
    let mut g = FlowNetwork::new();
    let s = g.add_node("s");
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    let t = g.add_node("t");
    let sa = g.add_arc(s, a, 1, 0);
    let sc = g.add_arc(s, c, 1, 0);
    let ab = g.add_arc(a, b, 1, 0);
    let ad = g.add_arc(a, d, 1, 0);
    let cd = g.add_arc(c, d, 1, 0);
    let bt = g.add_arc(b, t, 1, 0);
    let dt = g.add_arc(d, t, 1, 0);

    // Initial (suboptimal-order) flow: s-a-d-t, i.e. (pa, rd).
    g.push(sa, 1);
    g.push(ad, 1);
    g.push(dt, 1);
    println!("FIG3(a): initial flow s-a-d-t, value {}", g.flow_value(s));
    println!("         mapping: (pa, rd); pc blocked");

    // Fig. 3(b): the augmenting path s-c-d-a-b-t exists; Dinic finds it.
    let r = solve(&mut g, s, t, Algorithm::Dinic);
    println!("\nFIG3(b): augmenting path s-c-d-a-b-t advanced (cancels a->d)");
    println!(
        "FIG3(c): final flow value {} (+{} from augmentation)",
        g.flow_value(s),
        r.value
    );
    assert_eq!(g.flow_value(s), 2);
    // a->d must have been cancelled.
    assert_eq!(g.arc(ad).flow, 0, "arc a->d cancelled");
    let _ = (sc, ab, cd, bt);

    println!("\nFIG4: resulting reallocation:");
    for p in decompose_unit_flow(&g, s, t, None) {
        let names: Vec<&str> = p.nodes(&g).iter().map(|n| g.name(*n)).collect();
        println!("  path {}", names.join("-"));
    }
    println!("mapping: (pa, rb), (pc, rd) — both resources allocated, as in the paper");
}
