//! XSTAGE — the extra-stage remark.
//!
//! "If extra stages are provided, there will be more paths available.
//! Resources may be fully allocated in most cases even when an arbitrary
//! resource-request mapping is used. Finding an optimal mapping becomes
//! less critical."
//!
//! Sweeps the number of extra shuffle-exchange stages appended to an 8×8
//! Omega and reports optimal-vs-heuristic blocking and the gap between
//! them.

use rsin_bench::{emit_table, pct};
use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler};
use rsin_sim::blocking::{run_blocking, BlockingConfig};
use rsin_topology::builders::{omega_dilated, omega_extra_stage};
use rsin_topology::Network;

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000u64);
    let optimal = MaxFlowScheduler::default();
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(9));
    println!(
        "XSTAGE — blocking vs alternate paths on omega-8 ({trials} trials, 6 req / 6 res)\n\
         (two ways to add paths: extra shuffle-exchange stages, link dilation)\n"
    );
    let nets: Vec<Network> = (0..=3usize)
        .map(|e| omega_extra_stage(8, e).unwrap())
        .chain([omega_dilated(8, 2).unwrap(), omega_dilated(8, 3).unwrap()])
        .collect();
    let mut rows = Vec::new();
    for (i, net) in nets.iter().enumerate() {
        let cfg = BlockingConfig {
            trials,
            requests: 6,
            resources: 6,
            occupied_circuits: 1,
            seed: 31 + i as u64,
        };
        let o = run_blocking(net, &optimal as &dyn Scheduler, &cfg);
        let h = run_blocking(net, &greedy as &dyn Scheduler, &cfg);
        rows.push(vec![
            net.name().to_string(),
            pct(o.blocking.mean, o.blocking.ci95),
            pct(h.blocking.mean, h.blocking.ci95),
            format!("{:+.2} pp", 100.0 * (h.blocking.mean - o.blocking.mean)),
        ]);
    }
    emit_table(
        "extra_stage",
        &["network", "optimal", "greedy", "gap"],
        &rows,
    );
    println!(
        "\npaper shape: with more alternate paths both schedulers approach zero \
         blocking and the optimal-vs-heuristic gap shrinks — \"finding an optimal \
         mapping becomes less critical\". Dilation behaves like extra stages."
    );
}
