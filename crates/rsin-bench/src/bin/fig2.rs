//! FIG2 — the paper's Fig. 2 worked example.
//!
//! An MRSIN embedded in an 8×8 Omega network; circuits p2→r6 and p4→r4 are
//! already occupied; processors p1, p3, p5, p7, p8 request; resources r1,
//! r3, r5, r7, r8 are available. Transformation 1 + maximum flow allocates
//! **all five** resources, while the fixed mapping {(p1,r1), (p3,r5),
//! (p5,r3), (p7,r7), (p8,r8)} from the text manages only four (the path
//! p8→r8 is blocked).

use rsin_core::mapping::verify;
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MaxFlowScheduler, Scheduler};
use rsin_topology::builders::omega;
use rsin_topology::CircuitState;

fn main() {
    let net = omega(8).unwrap();
    println!("FIG2: {}", net.summary());
    let mut cs = CircuitState::new(&net);
    cs.connect(1, 5).expect("p2 -> r6");
    cs.connect(3, 3).expect("p4 -> r4");
    println!(
        "pre-established circuits: p2->r6, p4->r4 ({} links occupied)",
        cs.occupied_count()
    );

    let problem = ScheduleProblem::homogeneous(&cs, &[0, 2, 4, 6, 7], &[0, 2, 4, 6, 7]);
    let out = MaxFlowScheduler::default().schedule(&problem);
    verify(&out.assignments, &problem).expect("valid mapping");

    println!(
        "\noptimal (max-flow) mapping — {} of 5 allocated:",
        out.allocated()
    );
    let mut rows = out.assignments.clone();
    rows.sort_by_key(|a| a.processor);
    for a in &rows {
        println!(
            "  (p{}, r{})  via {} links",
            a.processor + 1,
            a.resource + 1,
            a.path.len()
        );
    }

    // The bad mapping from the text: p8 -> r8 becomes blocked.
    println!("\nfixed mapping {{(p1,r1),(p3,r5),(p5,r3),(p7,r7),(p8,r8)}}:");
    let mut greedy_cs = cs.clone();
    let pairs = [(0usize, 0usize), (2, 4), (4, 2), (6, 6), (7, 7)];
    let mut placed = 0;
    for (p, r) in pairs {
        match greedy_cs.connect(p, r) {
            Ok(_) => {
                placed += 1;
                println!("  (p{}, r{})  ok", p + 1, r + 1);
            }
            Err(_) => println!("  (p{}, r{})  BLOCKED", p + 1, r + 1),
        }
    }
    println!("fixed mapping allocated {placed} of 5");
    println!(
        "\npaper: the optimal mapping allocates all five, the fixed mapping only four \
         (p8->r8 blocked). reproduced: optimal={} fixed={}. (the fixed mapping blocks \
         at different pairs here because the paper renumbers the Omega input ports — \
         its footnote 1 — while this build uses Lawrie's numbering; the claim is the \
         qualitative gap, which holds.)",
        out.allocated(),
        placed
    );
    assert_eq!(out.allocated(), 5);
    assert!(placed < 5, "the fixed mapping must block");
}
