//! SHARDED — hierarchical two-level scheduling over an MRSIN-of-MRSINs.
//!
//! Sweeps shard count × global topology × offered load over the sharded
//! composition, running the two-stage
//! [`rsin_core::scheduler::HierarchicalScheduler`] (inter-shard
//! placement, then per-shard zero-rebuild solves fanned out on a fixed-width
//! pool) and reporting blocking, allocation, and cross-shard traffic. At the
//! top of the sweep (16 shards × omega-16 locals) the flattened fabric has
//! thousands of box ports, and across a sweep the scheduler decides on the
//! order of 10⁵ concurrent requests.
//!
//! Usage: `sharded [--shards CSV] [--local N] [--global crossbar|omega|both]
//! [--policy token|mincost|both] [--trials N] [--threads N]
//! [--shard-pool N] [--seed S] [--json FILE] [--breakdown FILE]`
//!
//! With `--breakdown <path>`, one bounded observed capture re-runs after the
//! sweep at the largest shard count (first global/policy, load 0.9) with a
//! per-shard [`rsin_obs::Telemetry`] sink attached to every shard
//! ([`HierarchicalScheduler::observed`]); the merged
//! [`rsin_core::ShardBreakdown`] report — home/remote placement counters,
//! per-shard solve-latency histograms, and the occupancy-imbalance ratio —
//! is written to the given path and summarised on stdout. Sinks only
//! observe, so the sweep's numbers are unaffected.
//!
//! Determinism contract: every statistic in the table and in the `--json`
//! report is a pure function of `(seed, trial)` with sequential trial-order
//! and shard-order reductions, so the JSON file is **byte-identical for any
//! `--threads` and any `--shard-pool` value** (the CI `shard-determinism`
//! job byte-compares it across both axes). Wall-clock throughput
//! (decisions/sec) goes to stdout only and never into the JSON.
//!
//! Every sweep point asserts the per-shard rebuild invariant: each worker's
//! per-shard transformation graph is built exactly once, however many
//! trials it ran.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use rsin_bench::emit_table;
use rsin_core::scheduler::{HierarchicalScheduler, InterShardPolicy};
use rsin_obs::Counter;
use rsin_sim::sharded::{run_sharded_trials, sharded_snapshot, ShardedStats, ShardedTrialConfig};
use rsin_sim::workload::trial_rng;
use rsin_topology::{GlobalTopology, ShardedNetwork, ShardedSpec};
use std::time::Instant;

const LOADS: [f64; 3] = [0.25, 0.5, 0.9];

/// Pop `--flag value` out of `args`; returns the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

struct SweepPoint {
    shards: usize,
    local: usize,
    global: GlobalTopology,
    policy: InterShardPolicy,
    load: f64,
    requests: usize,
    stats: ShardedStats,
}

fn json_row(p: &SweepPoint) -> String {
    // No wall-clock numbers in here: the report must be byte-identical
    // however many worker threads or per-shard pool slots produced it.
    format!(
        "    {{\"shards\": {}, \"local\": {}, \"global\": \"{}\", \
         \"policy\": \"{}\", \"load\": {}, \"requests\": {}, \
         \"blocking\": {}, \"blocking_ci95\": {}, \"allocated\": {}, \
         \"remote\": {}, \"stage1_blocked\": {}, \"rebuilds_ok\": {}}}",
        p.shards,
        p.local,
        p.global.name(),
        p.policy.name(),
        p.load,
        p.requests,
        p.stats.blocking.mean,
        p.stats.blocking.ci95,
        p.stats.allocated.mean,
        p.stats.remote.mean,
        p.stats.stage1_blocked.mean,
        p.stats.rebuilds_ok,
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let shard_counts: Vec<usize> = take_flag(&mut args, "--shards")
        .unwrap_or_else(|| "2,4,8,16".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--shards wants a CSV of counts"))
        .collect();
    let local: usize = take_flag(&mut args, "--local")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let globals: Vec<GlobalTopology> = match take_flag(&mut args, "--global").as_deref() {
        None | Some("both") => vec![GlobalTopology::Crossbar, GlobalTopology::Omega],
        Some("crossbar") => vec![GlobalTopology::Crossbar],
        Some("omega") => vec![GlobalTopology::Omega],
        Some(other) => {
            eprintln!("error: --global wants crossbar|omega|both, got {other:?}");
            std::process::exit(2);
        }
    };
    let policies: Vec<InterShardPolicy> = match take_flag(&mut args, "--policy").as_deref() {
        None | Some("token") => vec![InterShardPolicy::TokenRing],
        Some("mincost") => vec![InterShardPolicy::MinCost],
        Some("both") => vec![InterShardPolicy::TokenRing, InterShardPolicy::MinCost],
        Some(other) => {
            eprintln!("error: --policy wants token|mincost|both, got {other:?}");
            std::process::exit(2);
        }
    };
    let trials: u64 = take_flag(&mut args, "--trials")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let threads: usize = take_flag(&mut args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let shard_pool: usize = take_flag(&mut args, "--shard-pool")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let seed: u64 = take_flag(&mut args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(23);
    let json_path = take_flag(&mut args, "--json");
    let breakdown_path = take_flag(&mut args, "--breakdown");
    let heavy = match args.iter().position(|a| a == "--heavy") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    if let Some(stray) = args.first() {
        eprintln!("error: unknown argument {stray:?}");
        std::process::exit(2);
    }

    println!(
        "SHARDED — {trials} trial(s)/point, {threads} worker thread(s), \
         shard pool width {shard_pool}, seed {seed}\n"
    );

    let mut points: Vec<SweepPoint> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut decided: u64 = 0;
    for &shards in &shard_counts {
        for &global in &globals {
            let net = ShardedNetwork::new(ShardedSpec::new(shards, local, global))
                .expect("sweep composition is well-formed");
            let total = net.num_ports();
            for &policy in &policies {
                for &load in &LOADS {
                    let k = ((total as f64 * load).round() as usize).max(1);
                    let cfg = ShardedTrialConfig {
                        trials,
                        requests: k,
                        free: k,
                        seed,
                    };
                    let t0 = Instant::now();
                    let stats = run_sharded_trials(&net, policy, &cfg, threads, shard_pool);
                    let secs = t0.elapsed().as_secs_f64();
                    assert!(
                        stats.rebuilds_ok,
                        "{}: a shard rebuilt its transformation graph mid-run",
                        net.name()
                    );
                    decided += trials * k as u64;
                    let dps = (trials * k as u64) as f64 / secs.max(1e-9);
                    rows.push(vec![
                        net.name(),
                        policy.name().to_string(),
                        format!("{load:.2}"),
                        k.to_string(),
                        format!("{:.4}", stats.blocking.mean),
                        format!("{:.1}", stats.allocated.mean),
                        format!("{:.1}", stats.remote.mean),
                        format!("{:.1}", stats.stage1_blocked.mean),
                        format!("{dps:.0}"),
                    ]);
                    points.push(SweepPoint {
                        shards,
                        local,
                        global,
                        policy,
                        load,
                        requests: k,
                        stats,
                    });
                }
            }
        }
    }
    emit_table(
        "sharded",
        &[
            "network",
            "policy",
            "load",
            "requests",
            "blocking",
            "allocated",
            "remote",
            "stage1 blocked",
            "decisions/s",
        ],
        &rows,
    );
    println!("\ntotal scheduling decisions across the sweep: {decided}");
    println!(
        "shape: blocking stays near the flat oracle at low load; cross-shard \
         traffic appears once home shards saturate and is capped by the \
         uplink width."
    );

    if heavy {
        // Heavy-traffic regime on the flattened composition: the dynamic
        // discrete-event model at utilization targets up to past
        // saturation (bursty batch-4 arrivals, 64-deep bounded queues),
        // via `run_sharded_dynamic` on the smallest sweep composition.
        use rsin_core::scheduler::MaxFlowScheduler;
        use rsin_sim::sharded::run_sharded_dynamic;
        use rsin_sim::system::DynamicConfig;
        let shards = *shard_counts.first().expect("--shards is nonempty");
        let net = ShardedNetwork::new(ShardedSpec::new(shards, local, globals[0]))
            .expect("sweep composition is well-formed");
        let mut hrows = Vec::new();
        for &rho in &[0.9, 0.95, 0.99, 1.05] {
            let cfg = DynamicConfig {
                rho,
                batch_size: 4,
                queue_capacity: 64,
                sim_time: 400.0,
                warmup: 40.0,
                seed,
                ..DynamicConfig::default()
            };
            let stats = run_sharded_dynamic(&net, &MaxFlowScheduler::default(), cfg)
                .expect("flattenable composition");
            let offered = stats.completed + stats.final_queue + stats.shed_arrivals;
            hrows.push(vec![
                format!("{rho:.2}"),
                format!("{:.3}", stats.utilization),
                format!("{:.3}", stats.response_p99),
                format!("{:.2}", stats.mean_queue),
                stats.final_queue.to_string(),
                stats.shed_arrivals.to_string(),
                format!(
                    "{:.4}",
                    stats.shed_arrivals as f64 / (offered.max(1)) as f64
                ),
                stats.completed.to_string(),
            ]);
        }
        println!();
        emit_table(
            "sharded-heavy",
            &[
                "rho",
                "utilization",
                "resp p99",
                "queue",
                "final queue",
                "shed",
                "shed rate",
                "completed",
            ],
            &hrows,
        );
    }

    if let Some(jpath) = json_path {
        let json = format!(
            "{{\n  \"source\": \"sharded\",\n  \"local\": {local},\n  \
             \"trials\": {trials},\n  \"seed\": {seed},\n  \"rows\": [\n{}\n  ]\n}}\n",
            points.iter().map(json_row).collect::<Vec<_>>().join(",\n"),
        );
        if let Err(e) = std::fs::write(&jpath, &json) {
            eprintln!("error: could not write {jpath}: {e}");
            std::process::exit(2);
        }
        println!("report written to {jpath}");
    }

    if let Some(bpath) = breakdown_path {
        // One bounded observed capture: per-shard telemetry sinks on the
        // sweep's largest composition, re-running its trial snapshots (same
        // `(seed, trial)` streams) through an observed scheduler.
        let shards = shard_counts.iter().copied().max().unwrap_or(2);
        let global = globals[0];
        let policy = policies[0];
        let net = ShardedNetwork::new(ShardedSpec::new(shards, local, global))
            .expect("capture composition is well-formed");
        let total = net.num_ports();
        let k = ((total as f64 * 0.9).round() as usize).max(1);
        let h = HierarchicalScheduler::observed(&net, policy);
        for trial in 0..trials {
            let mut rng = trial_rng(seed, trial);
            let (requests, free) = sharded_snapshot(total, k, k, &mut rng);
            h.schedule(&requests, &free)
                .expect("observed cycle failed on a well-formed snapshot");
        }
        let report = h.shard_report().expect("observed scheduler carries sinks");
        println!(
            "\nshard breakdown — {} / {} / load 0.90 ({trials} cycle(s)), \
             occupancy imbalance {:.4}",
            net.name(),
            policy.name(),
            report.imbalance
        );
        let brows: Vec<Vec<String>> = (0..shards)
            .map(|s| {
                vec![
                    s.to_string(),
                    report.counter(s, Counter::ShardHomePlaced).to_string(),
                    report.counter(s, Counter::ShardRemoteIn).to_string(),
                    report.counter(s, Counter::ShardAllocated).to_string(),
                    report.counter(s, Counter::Cycles).to_string(),
                ]
            })
            .collect();
        emit_table(
            "breakdown",
            &["shard", "home placed", "remote in", "allocated", "cycles"],
            &brows,
        );
        let json = report.to_json(&format!("sharded/{}", net.name()));
        if let Err(e) = std::fs::write(&bpath, &json) {
            eprintln!("error: could not write {bpath}: {e}");
            std::process::exit(2);
        }
        println!("breakdown written to {bpath}");
    }
}
