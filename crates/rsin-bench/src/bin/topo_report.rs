//! TOPO — survey report over the implemented topologies.
//!
//! The comparison table a designer would build from Feng's survey (the
//! paper's reference for network classification): hardware cost, control
//! state, path structure, and blocking classification, computed — not
//! quoted — from the actual structures.

use rsin_bench::emit_table;
use rsin_topology::analysis::{analyze, BlockingClass};
use rsin_topology::builders;

fn main() {
    let samples = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40usize);
    let nets = vec![
        builders::omega(8).unwrap(),
        builders::baseline(8).unwrap(),
        builders::generalized_cube(8).unwrap(),
        builders::indirect_cube(8).unwrap(),
        builders::flip(8).unwrap(),
        builders::omega_extra_stage(8, 1).unwrap(),
        builders::omega_dilated(8, 2).unwrap(),
        builders::benes(8).unwrap(),
        builders::clos(3, 2, 4).unwrap(),
        builders::crossbar(8, 8).unwrap(),
        builders::gamma(8).unwrap(),
        builders::data_manipulator(8).unwrap(),
        builders::delta(2, 3).unwrap(),
    ];
    println!("TOPO — survey metrics ({samples} permutation samples per network)\n");
    let mut rows = Vec::new();
    for net in &nets {
        let r = analyze(net, samples, 7);
        rows.push(vec![
            r.name.clone(),
            format!("{}x{}", r.ports.0, r.ports.1),
            r.boxes.to_string(),
            r.stages.to_string(),
            r.links.to_string(),
            r.crosspoints.to_string(),
            format!("{:.0}", r.control_bits),
            format!("{}-{}", r.path_length.0, r.path_length.1),
            format!("{}-{}", r.path_multiplicity.0, r.path_multiplicity.1),
            format!("{:.0}%", 100.0 * r.admissibility),
            match r.class {
                BlockingClass::ApparentlyNonblocking => "nonblocking".into(),
                BlockingClass::ApparentlyRearrangeable => "rearrangeable".into(),
                BlockingClass::Blocking => "blocking".to_string(),
            },
        ]);
    }
    emit_table(
        "topo_report",
        &[
            "network",
            "ports",
            "boxes",
            "stages",
            "links",
            "xpoints",
            "ctrl bits",
            "path len",
            "paths/pair",
            "perm adm.",
            "class",
        ],
        &rows,
    );
    println!(
        "\nreading: single-path banyans (omega/cube/baseline/delta) are blocking with \
         one path per pair; extra stages, dilation, gamma/ADM redundancy, and the \
         Benes/Clos/crossbar families buy alternate paths with more crosspoints — \
         which is exactly the trade-off the paper's scheduling intelligence exists \
         to avoid paying in hardware."
    );
}
