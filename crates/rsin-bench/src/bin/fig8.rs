//! FIG8 — layered-network construction on a 4×4 MRSIN.
//!
//! Fig. 8(a): processors p1, p2, p4 request; resources r1, r3, r4 are
//! available; an initial flow maps p1→r4 and p4→r1, blocking p2. The
//! layered network (Fig. 8(b)) exposes a flow-augmenting path for p2 that
//! *cancels* the flow on the arc between the two middle switchboxes, after
//! which all three resources are allocated (p4 reallocated to r3, p2 to
//! r1).

use rsin_flow::graph::FlowNetwork;
use rsin_flow::max_flow::{solve, Algorithm, LayeredNetwork};
use rsin_flow::path::decompose_unit_flow;
use rsin_flow::stats::OpStats;

fn main() {
    // The flow network of Fig. 8(a): a 2-stage 4x4 MRSIN with boxes 4,5
    // (stage 0) and 6,7 (stage 1).
    let mut g = FlowNetwork::new();
    let s = g.add_node("s");
    let p1 = g.add_node("p1");
    let p2 = g.add_node("p2");
    let p4 = g.add_node("p4");
    let n4 = g.add_node("4");
    let n5 = g.add_node("5");
    let n6 = g.add_node("6");
    let n7 = g.add_node("7");
    let r1 = g.add_node("r1");
    let r3 = g.add_node("r3");
    let r4 = g.add_node("r4");
    let t = g.add_node("t");
    let s_p1 = g.add_arc(s, p1, 1, 0);
    g.add_arc(s, p2, 1, 0);
    let s_p4 = g.add_arc(s, p4, 1, 0);
    let a_p1_4 = g.add_arc(p1, n4, 1, 0);
    g.add_arc(p2, n4, 1, 0);
    let a_p4_5 = g.add_arc(p4, n5, 1, 0);
    g.add_arc(n4, n6, 1, 0);
    let a_4_7 = g.add_arc(n4, n7, 1, 0);
    let a_5_6 = g.add_arc(n5, n6, 1, 0);
    g.add_arc(n5, n7, 1, 0);
    let a_6_r1 = g.add_arc(n6, r1, 1, 0);
    g.add_arc(n6, r3, 1, 0);
    let a_7_r4 = g.add_arc(n7, r4, 1, 0);
    g.add_arc(n7, r3, 1, 0);
    let r1_t = g.add_arc(r1, t, 1, 0);
    g.add_arc(r3, t, 1, 0);
    let r4_t = g.add_arc(r4, t, 1, 0);

    // Initial flow: p1 -> 4 -> 7 -> r4 and p4 -> 5 -> 6 -> r1 (dashed in the figure).
    for arc in [
        s_p1, a_p1_4, a_4_7, a_7_r4, r4_t, s_p4, a_p4_5, a_5_6, a_6_r1, r1_t,
    ] {
        g.push(arc, 1);
    }
    println!(
        "FIG8(a): initial flow value {} — (p1,r4), (p4,r1); p2 blocked",
        g.flow_value(s)
    );

    // Fig. 8(b): the layered network.
    let mut st = OpStats::new();
    let ln = LayeredNetwork::build(&g, s, t, &mut st);
    println!("\nFIG8(b): layered network ({} layers):", ln.depth());
    for (i, layer) in ln.layers().iter().enumerate() {
        let names: Vec<&str> = layer.iter().map(|n| g.name(*n)).collect();
        println!("  V{i}: {}", names.join(", "));
    }
    assert!(ln.reaches_sink());
    assert!(
        ln.contains_arc(&g, a_5_6.twin()),
        "the cancellation arc 6->5 is a useful link of the layered network"
    );
    println!("  includes the arc 6 -> 5 (cancelling the flow 5 -> 6), as in the paper");

    let add = solve(&mut g, s, t, Algorithm::Dinic);
    println!(
        "\naugmented by {}: final value {}",
        add.value,
        g.flow_value(s)
    );
    assert_eq!(g.flow_value(s), 3);
    println!("final mapping:");
    for p in decompose_unit_flow(&g, s, t, None) {
        let names: Vec<&str> = p.nodes(&g).iter().map(|n| g.name(*n)).collect();
        println!("  {}", names.join("-"));
    }
    println!(
        "\npaper: \"all three resources can be allocated if p4 is reallocated to r3 \
         and p2 is reallocated to r1\". reproduced."
    );
}
