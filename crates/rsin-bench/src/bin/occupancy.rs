//! OCCUP — blocking vs. network load.
//!
//! "If the network is not completely free, then there will be fewer paths
//! available for resource allocation. In this case, a heuristic routing
//! algorithm may have poor performance. An optimal scheduling algorithm
//! will be able to better utilize these paths, and result in a low blocking
//! probability (although it will be higher than that of the case when the
//! network is completely free)."
//!
//! Sweeps the number of pre-established circuits and reports blocking for
//! the optimal and heuristic schedulers.

use rsin_bench::{emit_table, network_by_name, pct};
use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler};
use rsin_sim::blocking::{run_blocking, BlockingConfig};

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000u64);
    let optimal = MaxFlowScheduler::default();
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(3));
    let schedulers: Vec<&dyn Scheduler> = vec![&optimal, &greedy];

    println!("OCCUP — blocking vs pre-established circuits (omega-8 / cube-8, {trials} trials)\n");
    let mut rows = Vec::new();
    for name in ["omega-8", "cube-8"] {
        let net = network_by_name(name).unwrap();
        for occupied in 0..=4usize {
            let mut cells = vec![name.to_string(), occupied.to_string()];
            for s in &schedulers {
                let cfg = BlockingConfig {
                    trials,
                    requests: 4,
                    resources: 4,
                    occupied_circuits: occupied,
                    seed: 7_000 + occupied as u64,
                };
                let st = run_blocking(&net, *s, &cfg);
                cells.push(pct(st.blocking.mean, st.blocking.ci95));
            }
            rows.push(cells);
        }
        rows.push(vec![String::new(); 4]);
    }
    emit_table(
        "occupancy",
        &["network", "occupied circuits", "optimal", "greedy"],
        &rows,
    );
    println!(
        "\npaper shape: blocking grows with load for both; the optimal scheduler \
         degrades far more gracefully than the heuristic.\n\
         (note: at 4 occupied circuits half the 8×8 network is held by a routable \
         4-matching; the surviving 4×4 complement is so constrained that the drawn \
         requests always route — a conditioning effect of sequential circuit \
         placement, not a scheduler property.)"
    );
}
