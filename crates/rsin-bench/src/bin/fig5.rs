//! FIG5 — Transformation 2 on an 8×8 Omega with priorities/preferences.
//!
//! The paper's Fig. 5: processors p3, p5, p8 request (priority 1–10);
//! resources r1, r3, r5, r7, r8 are available (preference 1–10); the
//! minimum-cost flow allocates all three requests to the three
//! highest-preference reachable resources. The figure's exact occupied
//! paths are not recoverable from the text, so this reconstruction uses a
//! free network with preferences chosen to match the figure's outcome
//! {(p3,·),(p5,·),(p8,·)} over resources {r1, r5, r7} (see EXPERIMENTS.md).

use rsin_core::mapping::verify;
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MinCostScheduler, Scheduler};
use rsin_flow::min_cost::Algorithm;
use rsin_topology::builders::omega;
use rsin_topology::CircuitState;

fn main() {
    let net = omega(8).unwrap();
    println!("FIG5: {}", net.summary());
    let cs = CircuitState::new(&net);
    // (processor, priority) and (resource, preference), 0-based ids.
    let requests = [(2, 10), (4, 6), (7, 3)];
    let free = [(0, 9), (2, 2), (4, 8), (6, 7), (7, 1)];
    println!("requests : p3(γ=10) p5(γ=6) p8(γ=3)");
    println!("free     : r1(q=9) r3(q=2) r5(q=8) r7(q=7) r8(q=1)");
    let problem = ScheduleProblem::with_priorities(&cs, &requests, &free);

    for algo in Algorithm::ALL {
        let out = MinCostScheduler::new(algo).schedule(&problem);
        verify(&out.assignments, &problem).expect("valid");
        let mut rows = out.assignments.clone();
        rows.sort_by_key(|a| a.processor);
        println!(
            "\n{algo:?}: {} allocated, cost {}",
            out.allocated(),
            out.total_cost
        );
        for a in &rows {
            println!("  (p{}, r{})", a.processor + 1, a.resource + 1);
        }
        assert_eq!(out.allocated(), 3, "all three requests allocated");
        // The chosen resources are the three most preferred: r1, r5, r7.
        let mut chosen: Vec<usize> = out.assignments.iter().map(|a| a.resource).collect();
        chosen.sort_unstable();
        assert_eq!(
            chosen,
            vec![0, 4, 6],
            "highest-preference resources selected"
        );
    }
    println!(
        "\npaper: min-cost flow binds the requests to the selected (bold) paths, \
         preferring high-preference resources while allocating every request. reproduced."
    );
}
