//! SWITCH — circuit vs. packet switching for resource tasks.
//!
//! Section II, point 1: the RSIN model adopts circuit switching because a
//! resource "cannot process a task until it is completely received", so
//! packetization delay hurts, and rerouting a blocked circuit request is
//! cheaper than rerouting packets. This ablation sweeps task length and
//! fabric load and reports mean delivery times under both disciplines
//! (discrete-time model documented in `rsin_sim::packet`).

use rsin_bench::emit_table;
use rsin_sim::packet::{compare_mean, SwitchingConfig};
use rsin_sim::workload::trial_rng;

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000u64);
    println!("SWITCH — mean task delivery time (slots), 4-stage fabric, {trials} trials/cell\n");
    let mut rows = Vec::new();
    for &task_len in &[2u64, 10, 50] {
        for &load in &[0.0f64, 0.2, 0.4] {
            let cfg = SwitchingConfig {
                task_len,
                stages: 4,
                background: load,
                circuit_block_prob: load,
            };
            let mut rng = trial_rng(6_000 + task_len, (load * 10.0) as u64);
            let (c, p) = compare_mean(&cfg, trials, &mut rng);
            rows.push(vec![
                task_len.to_string(),
                format!("{load:.1}"),
                format!("{c:.1}"),
                format!("{p:.1}"),
                if c <= p {
                    "circuit".into()
                } else {
                    "packet".to_string()
                },
            ]);
        }
    }
    emit_table(
        "switching",
        &["task length", "load", "circuit", "packet", "winner"],
        &rows,
    );
    println!(
        "\nshape: at zero load the disciplines tie; as load and task length grow, \
         the reserved circuit (immune to per-hop queueing, one cheap setup wait) \
         pulls ahead — the paper's justification for a circuit-switched RSIN."
    );
}
