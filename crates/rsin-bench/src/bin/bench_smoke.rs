//! BENCH_SMOKE — self-timed hot-path regression gate for CI.
//!
//! The criterion shim prints human output only, so CI gates on this
//! dedicated binary instead: it wall-clock-times the `hot_path` bench's
//! workloads (the threaded blocking batch at 1/2/4/8 workers plus the
//! reset-per-trial scheduling rows) with min-of-N repetitions and writes a
//! JSON report.
//!
//! Usage: `bench_smoke [--telemetry <path>] [--replicas <n>] <out.json>
//! [baseline.json]`
//!
//! Raw seconds are not comparable across machines, so every row also
//! carries a *normalized* time: row seconds divided by the seconds of a
//! fixed single-core integer calibration loop measured in the same process.
//! When a baseline file is given, the gate fails (exit 1) if any row's
//! normalized time regresses more than 25 % over the baseline's — slow CI
//! hardware cancels out of the ratio, real hot-path regressions do not.
//!
//! Six contracts are asserted on the way:
//!
//! * determinism — every thread count must produce bit-identical blocking
//!   statistics;
//! * replicated determinism — `run_replicated` over `--replicas` replicas
//!   (default 4) must produce bit-identical merged statistics at 1, 2, and
//!   8 worker threads;
//! * zero-overhead-when-off telemetry — the `NoopProbe` observed scheduling
//!   row must stay within the regression limit of the unobserved row,
//!   in-process (no baseline needed);
//! * parallel efficiency — when the baseline carries a
//!   `min_parallel_speedup` and the machine has ≥ 4 cores, the 4-thread
//!   blocking row must beat the 1-thread row by at least that factor;
//! * scheduler-pool efficiency — when the baseline carries a
//!   `min_pool_speedup` and the machine has ≥ 4 cores, the four-scheduler
//!   comparison table run on per-scheduler pools
//!   (`compare_schedulers_pools`) must beat the serial row-after-row table
//!   by at least that factor (max-of-rows vs. sum-of-rows wall-clock). On
//!   smaller machines both per-core gates print a skip note instead;
//! * sharded hierarchy — the hierarchical two-stage scheduler on a 4-shard
//!   composition must produce bit-identical statistics at every
//!   thread/shard-pool width, never allocate more than the flat Theorem-2
//!   oracle on the same snapshots, and (when the baseline carries a
//!   `min_shard_speedup` and the machine has ≥ 4 cores) beat the flat
//!   single-solver fresh solve by at least that factor.
//!
//! `--telemetry <path>` additionally runs the observed hot path under a live
//! `rsin_obs::Telemetry` sink and writes its JSON report.

use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::IncrementalScheduler;
use rsin_core::scheduler::InterShardPolicy;
use rsin_core::scheduler::{
    IncrementalBackend, MaxFlowScheduler, MinCostScheduler, ScheduleScratch, Scheduler,
    StreamDecision,
};
use rsin_flow::graph::{FlowNetwork, NodeId};
use rsin_flow::max_flow::Algorithm;
use rsin_flow::{max_flow, min_cost, SolveScratch};
use rsin_obs::{FlightRecorder, NoopProbe, Probe, Telemetry, Tracer};
use rsin_sim::blocking::{
    compare_schedulers_pools, compare_schedulers_threads, run_blocking_threads, BlockingConfig,
};
use rsin_sim::replicate::run_replicated;
use rsin_sim::sharded::{
    run_flat_trials, run_paired_trials, run_sharded_trials, ShardedTrialConfig,
};
use rsin_sim::stream::{generate_commands, replay_batch, replay_incremental, StreamCommand};
use rsin_sim::system::{DynamicConfig, SystemSim};
use rsin_sim::workload::{random_snapshot, trial_rng};
use rsin_topology::builders::omega;
use rsin_topology::{GlobalTopology, Network, ShardedNetwork, ShardedSpec};
use std::hint::black_box;
use std::time::Instant;

const THREAD_ROWS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;
const BATCH_TRIALS: u64 = 64;
const REGRESSION_LIMIT: f64 = 1.25;

struct Row {
    name: String,
    secs: f64,
    normalized: f64,
}

/// Fixed single-core integer workload whose wall time anchors the
/// normalization (xorshift64*, enough iterations to dominate timer noise).
fn calibration_secs() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut acc = 0u64;
        for _ in 0..20_000_000u64 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            acc = acc.wrapping_add(x.wrapping_mul(0x2545_F491_4F6C_DD1D));
        }
        black_box(acc);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Min-of-reps wall time of a workload.
fn time_min<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The `hot_path` bench's reset-per-trial batch: schedule a fixed snapshot
/// stream through a reused scratch.
fn reset_batch(net: &Network, scheduler: &dyn Scheduler, scratch: &mut ScheduleScratch) -> usize {
    let mut total = 0;
    for trial in 0..BATCH_TRIALS {
        let mut rng = trial_rng(41, trial);
        let snap = random_snapshot(net, 8, 8, 2, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        total += scheduler.schedule_reusing(&problem, scratch).allocated();
    }
    total
}

/// [`reset_batch`] through the observed scheduling entry point — with
/// `NoopProbe` this times the zero-overhead-when-off claim, with a live
/// `Telemetry` it produces the exported report.
fn reset_batch_observed(
    net: &Network,
    scheduler: &dyn Scheduler,
    scratch: &mut ScheduleScratch,
    probe: &dyn Probe,
) -> usize {
    let mut total = 0;
    for trial in 0..BATCH_TRIALS {
        let mut rng = trial_rng(41, trial);
        let snap = random_snapshot(net, 8, 8, 2, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        total += scheduler
            .try_schedule_observed(&problem, scratch, probe)
            .expect("well-formed snapshot")
            .allocated();
    }
    total
}

/// The streaming replay through the traced entry points — with a live
/// [`FlightRecorder`] this times the span-recording hot path against the
/// plain `stream_incremental` row.
fn replay_traced(net: &Network, commands: &[StreamCommand], tracer: &dyn Tracer) -> usize {
    let mut inc = IncrementalScheduler::new(net, IncrementalBackend::MaxFlow);
    let mut decisions = 0usize;
    for c in commands {
        match *c {
            StreamCommand::Request { processor } => {
                inc.request_traced(processor, &NoopProbe, tracer)
            }
            StreamCommand::Release { processor } => {
                inc.release_traced(processor, &NoopProbe, tracer)
            }
            StreamCommand::Stats => continue,
        }
        .expect("valid stream");
        decisions += 1;
    }
    decisions
}

/// Deterministic layered DAG exercising the solver core's adjacency walk:
/// `layers` ranks of `width` nodes, each node wired to `degree`
/// pseudo-random nodes of the next rank (xorshift64*, fixed seed), with
/// small mixed capacities and costs. Big enough that adjacency-list cache
/// behaviour — the quantity the CSR rows gate — dominates the solve.
fn csr_network(width: usize, layers: usize, degree: usize) -> (FlowNetwork, NodeId, NodeId) {
    let mut g = FlowNetwork::with_capacity(width * layers + 2, width * layers * degree);
    let s = g.add_node("s");
    let t = g.add_node("t");
    let mut ranks: Vec<Vec<NodeId>> = Vec::with_capacity(layers);
    for l in 0..layers {
        ranks.push(
            (0..width)
                .map(|i| g.add_node(format!("n{l}_{i}")))
                .collect(),
        );
    }
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for &u in &ranks[0] {
        g.add_arc(s, u, 2, 0);
    }
    for l in 0..layers - 1 {
        for &u in &ranks[l] {
            for _ in 0..degree {
                let v = ranks[l + 1][(next() as usize) % width];
                g.add_arc(u, v, 1 + (next() % 3) as i64, 1 + (next() % 2) as i64);
            }
        }
    }
    for &u in &ranks[layers - 1] {
        g.add_arc(u, t, 2, 0);
    }
    (g, s, t)
}

/// The `csr_dinic` row body: repeated reset + scratch Dinic solves on one
/// retained solver-core network (the zero-rebuild hot path, minus the
/// transformation layer, so the row isolates the adjacency walk itself).
fn csr_dinic_batch(g: &mut FlowNetwork, s: NodeId, t: NodeId, scratch: &mut SolveScratch) -> i64 {
    let mut total = 0;
    for _ in 0..12 {
        g.reset();
        total += max_flow::solve_with(g, s, t, Algorithm::Dinic, scratch).value;
    }
    total
}

/// The `csr_min_cost` row body: repeated reset + scratch cycle-canceling
/// solves to the full flow value. Cycle canceling spends nearly all of its
/// time in Bellman–Ford negative-cycle sweeps — node-by-node adjacency
/// walks with one compare-and-relax per arc — so of the min-cost solvers
/// it is the one whose running time is the adjacency walk the CSR layout
/// flattens (SSP hides the walk behind Dijkstra heap traffic).
fn csr_min_cost_batch(
    g: &mut FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    scratch: &mut SolveScratch,
) -> i64 {
    let mut total = 0;
    for _ in 0..3 {
        g.reset();
        total += min_cost::solve_with(
            g,
            s,
            t,
            target,
            min_cost::Algorithm::CycleCanceling,
            scratch,
        )
        .cost;
    }
    total
}

fn emit_json(path: &str, calib: f64, rows: &[Row]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"hot_path_smoke\",\n");
    s.push_str(&format!("  \"reps\": {REPS},\n"));
    s.push_str(&format!("  \"calibration_secs\": {calib:.6},\n"));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs\": {:.6}, \"normalized\": {:.6}}}{}\n",
            r.name,
            r.secs,
            r.normalized,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// Extract `(name, normalized)` pairs from a report produced by
/// [`emit_json`] (fixed format, no general JSON parser needed).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some((_, rest)) = rest.split_once("\"normalized\": ") else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            rows.push((name.to_string(), v));
        }
    }
    rows
}

/// Extract a top-level named floor (e.g. `min_parallel_speedup`,
/// `min_pool_speedup`) from a baseline file, if present (fixed format, like
/// [`parse_baseline`]).
fn parse_floor(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let idx = text.find(&needle)?;
    let rest = text[idx + needle.len()..].trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

/// Pop `--flag value` out of `args`; returns the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = take_flag(&mut args, "--telemetry");
    let replicas: usize = take_flag(&mut args, "--replicas")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_hot_path.json".into());
    let baseline_path = args.get(1).cloned();

    let net = omega(16).unwrap();
    let cfg = BlockingConfig {
        trials: 1024,
        requests: 8,
        resources: 8,
        occupied_circuits: 2,
        seed: 41,
    };
    let max_flow = MaxFlowScheduler::default();
    let min_cost = MinCostScheduler::default();

    println!("bench_smoke: calibrating...");
    let calib = calibration_secs();
    println!("  calibration loop: {calib:.4}s");

    // Determinism contract across the thread rows, checked before timing.
    let reference = run_blocking_threads(&net, &max_flow, &cfg, 1);
    for &t in &THREAD_ROWS[1..] {
        let r = run_blocking_threads(&net, &max_flow, &cfg, t);
        assert_eq!(
            reference.blocking.mean.to_bits(),
            r.blocking.mean.to_bits(),
            "thread count {t} changed the statistics"
        );
    }

    let mut rows = Vec::new();
    for &t in &THREAD_ROWS {
        let secs = time_min(|| {
            black_box(run_blocking_threads(&net, &max_flow, &cfg, t).blocking.mean);
        });
        println!("  blocking_threads_{t}: {secs:.4}s");
        rows.push(Row {
            name: format!("blocking_threads_{t}"),
            secs,
            normalized: secs / calib,
        });
    }
    for (name, s) in [
        ("reset_per_trial_max_flow", &max_flow as &dyn Scheduler),
        ("reset_per_trial_min_cost", &min_cost as &dyn Scheduler),
    ] {
        let mut scratch = ScheduleScratch::new();
        let secs = time_min(|| {
            black_box(reset_batch(&net, s, &mut scratch));
        });
        println!("  {name}: {secs:.4}s");
        rows.push(Row {
            name: name.to_string(),
            secs,
            normalized: secs / calib,
        });
    }

    // Solver-core rows (ISSUE 9): repeated zero-rebuild solves on one big
    // layered DAG, isolating the adjacency walk the CSR layout flattens.
    // Gated against the committed *pre-CSR* observed values in the baseline
    // (`pre_csr_dinic` / `pre_csr_min_cost`) by `min_csr_speedup` below.
    {
        let (mut cg, cs, ct) = csr_network(64, 24, 20);
        let mut scratch = SolveScratch::new();
        let secs = time_min(|| {
            black_box(csr_dinic_batch(&mut cg, cs, ct, &mut scratch));
        });
        println!("  csr_dinic: {secs:.4}s");
        rows.push(Row {
            name: "csr_dinic".to_string(),
            secs,
            normalized: secs / calib,
        });
        // Smaller network for the cycle-canceling row: Bellman–Ford sweeps
        // are O(V·E) per canceled cycle, and the full-value target avoids
        // the (cold-path) overshoot walk.
        let (mut mg, ms, mt) = csr_network(20, 8, 4);
        mg.reset();
        let target = max_flow::solve_with(&mut mg, ms, mt, Algorithm::Dinic, &mut scratch).value;
        let secs = time_min(|| {
            black_box(csr_min_cost_batch(&mut mg, ms, mt, target, &mut scratch));
        });
        println!("  csr_min_cost: {secs:.4}s");
        rows.push(Row {
            name: "csr_min_cost".to_string(),
            secs,
            normalized: secs / calib,
        });
    }

    // Scheduler-pool rows (ROADMAP item 2): the same four-scheduler
    // comparison table run serially row after row vs. on per-scheduler
    // pools. The four max-flow variants cost about the same per trial, so
    // on >= 4 cores the pooled table should approach max-of-rows
    // wall-clock. Bit-identity between the two is asserted first.
    let dinic = MaxFlowScheduler::new(Algorithm::Dinic);
    let edmonds_karp = MaxFlowScheduler::new(Algorithm::EdmondsKarp);
    let push_relabel = MaxFlowScheduler::new(Algorithm::PushRelabel);
    let capacity_scaling = MaxFlowScheduler::new(Algorithm::CapacityScaling);
    let table: [&dyn Scheduler; 4] = [&dinic, &edmonds_karp, &push_relabel, &capacity_scaling];
    let table_cfg = BlockingConfig { trials: 512, ..cfg };
    let serial_table = compare_schedulers_threads(&net, &table, &table_cfg, 1);
    let pooled_table = compare_schedulers_pools(&net, &table, &table_cfg, 1);
    for ((n1, a), (n2, b)) in serial_table.iter().zip(&pooled_table) {
        assert_eq!(n1, n2, "pooled table reordered the rows");
        assert_eq!(
            a.blocking.mean.to_bits(),
            b.blocking.mean.to_bits(),
            "per-scheduler pools changed the statistics for {n1}"
        );
    }
    let serial_secs = time_min(|| {
        black_box(compare_schedulers_threads(&net, &table, &table_cfg, 1));
    });
    println!("  scheduler_table_serial: {serial_secs:.4}s");
    rows.push(Row {
        name: "scheduler_table_serial".to_string(),
        secs: serial_secs,
        normalized: serial_secs / calib,
    });
    let pool_secs = time_min(|| {
        black_box(compare_schedulers_pools(&net, &table, &table_cfg, 1));
    });
    let pool_speedup = serial_secs / pool_secs;
    println!("  scheduler_table_pools: {pool_secs:.4}s (x{pool_speedup:.2} vs serial)");
    rows.push(Row {
        name: "scheduler_table_pools".to_string(),
        secs: pool_secs,
        normalized: pool_secs / calib,
    });

    // Replicated-dynamic rows (ROADMAP item 3): the merged statistics of a
    // replicated single-config dynamic run must be bit-identical at 1, 2,
    // and 8 worker threads, then the run itself is timed at full width.
    let dyn_cfg = DynamicConfig {
        arrival_rate: 0.5,
        sim_time: 150.0,
        warmup: 15.0,
        seed: 41,
        ..DynamicConfig::default()
    };
    let rep_reference = run_replicated(&net, &max_flow, &dyn_cfg, replicas, 1);
    for t in [2usize, 8] {
        let r = run_replicated(&net, &max_flow, &dyn_cfg, replicas, t);
        assert_eq!(
            rep_reference.completed, r.completed,
            "replicated completed drifted at {t} threads"
        );
        assert_eq!(
            rep_reference.cycles, r.cycles,
            "replicated cycles drifted at {t} threads"
        );
        for (name, a, b) in [
            (
                "response.mean",
                rep_reference.response.mean,
                r.response.mean,
            ),
            (
                "response.ci95",
                rep_reference.response.ci95,
                r.response.ci95,
            ),
            ("response.p99", rep_reference.response.p99, r.response.p99),
            (
                "utilization.mean",
                rep_reference.utilization.mean,
                r.utilization.mean,
            ),
            (
                "mean_queue.mean",
                rep_reference.mean_queue.mean,
                r.mean_queue.mean,
            ),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "replicated {name} drifted at {t} threads"
            );
        }
    }
    let rep_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rep_secs = time_min(|| {
        black_box(
            run_replicated(&net, &max_flow, &dyn_cfg, replicas, rep_threads)
                .response
                .mean,
        );
    });
    println!("  replicated_dynamic: {rep_secs:.4}s ({replicas} replicas, {rep_threads} threads)");
    rows.push(Row {
        name: "replicated_dynamic".to_string(),
        secs: rep_secs,
        normalized: rep_secs / calib,
    });

    // Heavy-traffic row (ISSUE 9): the dynamic model past saturation —
    // bursty batch-4 arrivals against 32-deep bounded queues at a
    // utilization target well past critical (rho 1.5, so the short bench
    // horizon still drives the bound into overflow; the near-critical
    // rho = {0.9..1.05} ladder lives in the `dynamic --heavy` sweep where
    // horizons are long). The regime's invariants are asserted before
    // timing: a sub-critical run sheds nothing, the overloaded run sheds
    // and carries a backlog to the horizon.
    let heavy_cfg = DynamicConfig {
        rho: 1.5,
        batch_size: 4,
        queue_capacity: 32,
        sim_time: 120.0,
        warmup: 12.0,
        seed: 41,
        ..DynamicConfig::default()
    };
    {
        let calm = SystemSim::new(
            &net,
            DynamicConfig {
                rho: 0.7,
                ..heavy_cfg
            },
        )
        .run(&max_flow);
        assert_eq!(calm.shed_arrivals, 0, "sub-critical run must not shed");
        let hot = SystemSim::new(&net, heavy_cfg).run(&max_flow);
        assert!(hot.shed_arrivals > 0, "rho 1.5 must overflow the bound");
        assert!(hot.final_queue > 0, "rho 1.5 must carry a backlog");
    }
    let heavy_secs = time_min(|| {
        black_box(SystemSim::new(&net, heavy_cfg).run(&max_flow).completed);
    });
    println!("  heavy_traffic: {heavy_secs:.4}s (rho 1.5, batch 4, bound 32)");
    rows.push(Row {
        name: "heavy_traffic".to_string(),
        secs: heavy_secs,
        normalized: heavy_secs / calib,
    });

    // Streaming rows: warm-start incremental decisions vs per-event batch
    // re-solves on the same recorded command stream (the rsin-serve hot
    // path). Allocation-count equivalence on every prefix is asserted
    // before timing; the speedup gate reads `min_stream_speedup` from the
    // baseline. Both sides are single-threaded, so there is no core-count
    // skip — the ratio is meaningful on any machine.
    let stream_cmds = generate_commands(net.num_processors(), 384, 0.8, 41, 0);
    {
        let decisions = replay_incremental(&net, IncrementalBackend::MaxFlow, &stream_cmds)
            .expect("valid stream");
        let batch_counts = replay_batch(&net, &stream_cmds).expect("batch replays");
        let mut allocated = 0usize;
        for (d, &want) in decisions.iter().zip(&batch_counts) {
            match d {
                StreamDecision::Allocated { .. } => allocated += 1,
                StreamDecision::Released { promoted, .. } => {
                    allocated -= 1;
                    if promoted.is_some() {
                        allocated += 1;
                    }
                }
                StreamDecision::Queued { .. } | StreamDecision::Withdrawn { .. } => {}
            }
            assert_eq!(allocated, want, "incremental diverged from batch re-solve");
        }
    }
    let stream_inc_secs = time_min(|| {
        black_box(
            replay_incremental(&net, IncrementalBackend::MaxFlow, &stream_cmds)
                .expect("valid stream")
                .len(),
        );
    });
    println!("  stream_incremental: {stream_inc_secs:.4}s");
    rows.push(Row {
        name: "stream_incremental".to_string(),
        secs: stream_inc_secs,
        normalized: stream_inc_secs / calib,
    });
    let stream_batch_secs = time_min(|| {
        black_box(
            replay_batch(&net, &stream_cmds)
                .expect("batch replays")
                .len(),
        );
    });
    let stream_speedup = stream_batch_secs / stream_inc_secs;
    println!("  stream_batch: {stream_batch_secs:.4}s (incremental x{stream_speedup:.2} faster)");
    rows.push(Row {
        name: "stream_batch".to_string(),
        secs: stream_batch_secs,
        normalized: stream_batch_secs / calib,
    });

    // Tracing overhead gate (ISSUE 8): the same incremental replay with a
    // live flight recorder capturing every lifecycle span must stay within
    // the regression limit of the untraced row, measured in the same
    // process so machine speed cancels exactly. One replay is only tens of
    // microseconds, so each rep times a 32-replay loop — and the two sides
    // run back-to-back inside every rep with the gate taking the best
    // paired ratio, so a load spike hitting one phase but not the other
    // (the usual CI flake) inflates both or neither.
    const TRACE_GATE_LOOPS: usize = 64;
    let recorder = FlightRecorder::new(1 << 16);
    let mut trace_overhead = f64::INFINITY;
    let mut traced_loop_secs = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..TRACE_GATE_LOOPS {
            black_box(
                replay_incremental(&net, IncrementalBackend::MaxFlow, &stream_cmds)
                    .expect("valid stream")
                    .len(),
            );
        }
        let untraced = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in 0..TRACE_GATE_LOOPS {
            black_box(replay_traced(&net, &stream_cmds, &recorder));
        }
        let traced = start.elapsed().as_secs_f64();
        trace_overhead = trace_overhead.min(traced / untraced);
        traced_loop_secs = traced_loop_secs.min(traced);
    }
    let stream_traced_secs = traced_loop_secs / TRACE_GATE_LOOPS as f64;
    println!(
        "  stream_incremental_traced: {stream_traced_secs:.4}s (x{trace_overhead:.3} of untraced)"
    );
    rows.push(Row {
        name: "stream_incremental_traced".to_string(),
        secs: stream_traced_secs,
        normalized: stream_traced_secs / calib,
    });
    if trace_overhead > REGRESSION_LIMIT {
        eprintln!(
            "bench_smoke: traced streaming replay is x{trace_overhead:.3} of the untraced one \
             (limit {REGRESSION_LIMIT}) — span recording is too hot for the request path"
        );
        std::process::exit(1);
    }

    // Sharded-hierarchy rows (ISSUE 7): the two-stage scheduler on a
    // 4-shard × omega-16 composition vs the flat Theorem-2 fresh solve on
    // the flattened fabric, over the same (seed, trial) snapshots. Three
    // contracts come first: thread/shard-pool invariance of every
    // statistic, per-shard rebuilds() == 1, and per-trial hier ≤ flat
    // conformance; then the hierarchical row runs with pooled trials while
    // the flat row stays single-solver — the gate below reads
    // `min_shard_speedup` from the baseline.
    let snet = ShardedNetwork::new(ShardedSpec::new(4, 16, GlobalTopology::Crossbar))
        .expect("4x16 crossbar composition is well-formed");
    let sflat = snet.flatten().expect("composition flattens");
    let scfg = ShardedTrialConfig {
        trials: 128,
        requests: 32,
        free: 32,
        seed: 41,
    };
    let sref = run_sharded_trials(&snet, InterShardPolicy::TokenRing, &scfg, 1, 1);
    assert!(
        sref.rebuilds_ok,
        "a shard rebuilt its transformation graph mid-run"
    );
    for (t, p) in [(4usize, 1usize), (1, 4), (8, 2)] {
        let r = run_sharded_trials(&snet, InterShardPolicy::TokenRing, &scfg, t, p);
        for (name, a, b) in [
            ("blocking.mean", sref.blocking.mean, r.blocking.mean),
            ("allocated.mean", sref.allocated.mean, r.allocated.mean),
            ("remote.mean", sref.remote.mean, r.remote.mean),
            (
                "stage1_blocked.mean",
                sref.stage1_blocked.mean,
                r.stage1_blocked.mean,
            ),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sharded {name} drifted at {t} threads / shard pool {p}"
            );
        }
    }
    for (trial, (hier, flat)) in run_paired_trials(
        &snet,
        &sflat,
        InterShardPolicy::TokenRing,
        &scfg,
        rep_threads,
    )
    .iter()
    .enumerate()
    {
        assert!(
            hier <= flat,
            "trial {trial}: hierarchical allocated {hier}, above the flat oracle's {flat}"
        );
    }
    let hier_secs = time_min(|| {
        black_box(
            run_sharded_trials(&snet, InterShardPolicy::TokenRing, &scfg, 4, 1)
                .allocated
                .mean,
        );
    });
    println!("  sharded_hier: {hier_secs:.4}s");
    rows.push(Row {
        name: "sharded_hier".to_string(),
        secs: hier_secs,
        normalized: hier_secs / calib,
    });
    let flat_secs = time_min(|| {
        black_box(run_flat_trials(&sflat, &scfg, 1).allocated.mean);
    });
    let shard_speedup = flat_secs / hier_secs;
    println!("  sharded_flat: {flat_secs:.4}s (hierarchical x{shard_speedup:.2} faster)");
    rows.push(Row {
        name: "sharded_flat".to_string(),
        secs: flat_secs,
        normalized: flat_secs / calib,
    });

    // Zero-overhead-when-off gate: the observed hot path under NoopProbe
    // must stay within the regression limit of the plain one. Each rep
    // times the plain and observed batches back to back and the gate takes
    // the min of the per-rep ratios, so slow phases of a shared machine hit
    // both sides of at least one rep equally and cancel out of the ratio.
    let (observed_secs, overhead) = {
        let mut scratch = ScheduleScratch::new();
        let mut best_ratio = f64::INFINITY;
        let mut best_secs = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            black_box(reset_batch(&net, &max_flow, &mut scratch));
            let plain = start.elapsed().as_secs_f64();
            let start = Instant::now();
            black_box(reset_batch_observed(
                &net,
                &max_flow,
                &mut scratch,
                &NoopProbe,
            ));
            let observed = start.elapsed().as_secs_f64();
            best_ratio = best_ratio.min(observed / plain);
            best_secs = best_secs.min(observed);
        }
        (best_secs, best_ratio)
    };
    println!("  reset_per_trial_max_flow_observed: {observed_secs:.4}s (x{overhead:.3} of plain)");
    rows.push(Row {
        name: "reset_per_trial_max_flow_observed".to_string(),
        secs: observed_secs,
        normalized: observed_secs / calib,
    });
    if overhead > REGRESSION_LIMIT {
        eprintln!(
            "bench_smoke: NoopProbe observed path is x{overhead:.3} of the plain path \
             (limit {REGRESSION_LIMIT}) — telemetry is not zero-overhead-when-off"
        );
        std::process::exit(1);
    }

    if let Err(e) = emit_json(&out_path, calib, &rows) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("report written to {out_path}");

    if let Some(path) = &telemetry_path {
        let telemetry = Telemetry::new();
        let mut scratch = ScheduleScratch::new();
        reset_batch_observed(&net, &max_flow, &mut scratch, &telemetry);
        reset_batch_observed(&net, &min_cost, &mut scratch, &telemetry);
        if let Err(e) = std::fs::write(path, telemetry.report().to_json("bench_smoke")) {
            eprintln!("error: could not write telemetry {path}: {e}");
            std::process::exit(2);
        }
        println!("telemetry written to {path}");
    }

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("error: baseline {baseline_path} has no rows");
        std::process::exit(2);
    }
    let mut failed = false;
    for row in &rows {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == row.name) else {
            println!("  {}: no baseline row, skipping", row.name);
            continue;
        };
        let ratio = row.normalized / base;
        let verdict = if ratio > REGRESSION_LIMIT {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {}: normalized {:.4} vs baseline {:.4} (x{:.2}) {}",
            row.name, row.normalized, base, ratio, verdict
        );
    }
    // Parallel-efficiency gate (ROADMAP item): with enough cores, the
    // 4-thread blocking row must actually outrun the 1-thread row. The
    // in-process secs ratio is machine-independent; the floor comes from
    // the baseline file so CI hardware changes tune one number, not code.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if let Some(min_speedup) = parse_floor(&text, "min_parallel_speedup") {
        if cores >= 4 {
            let t1 = rows.iter().find(|r| r.name == "blocking_threads_1");
            let t4 = rows.iter().find(|r| r.name == "blocking_threads_4");
            if let (Some(t1), Some(t4)) = (t1, t4) {
                let speedup = t1.secs / t4.secs;
                println!(
                    "  parallel efficiency: 4-thread speedup x{speedup:.2} (floor x{min_speedup})"
                );
                if speedup < min_speedup {
                    eprintln!(
                        "bench_smoke: 4-thread speedup x{speedup:.2} below floor x{min_speedup}"
                    );
                    failed = true;
                }
            }
        } else {
            println!("  parallel efficiency: skipped ({cores} core(s) available, gate needs >= 4)");
        }
    }
    // Scheduler-pool efficiency gate (ROADMAP item 2): per-scheduler pools
    // must turn the comparison table's sum-of-rows into roughly
    // max-of-rows. Same skip rule as above — the pooled table cannot beat
    // serial without free cores.
    if let Some(min_pool) = parse_floor(&text, "min_pool_speedup") {
        if cores >= 4 {
            let serial = rows.iter().find(|r| r.name == "scheduler_table_serial");
            let pooled = rows.iter().find(|r| r.name == "scheduler_table_pools");
            if let (Some(serial), Some(pooled)) = (serial, pooled) {
                let speedup = serial.secs / pooled.secs;
                println!(
                    "  scheduler-pool efficiency: table speedup x{speedup:.2} (floor x{min_pool})"
                );
                if speedup < min_pool {
                    eprintln!(
                        "bench_smoke: scheduler-pool table speedup x{speedup:.2} below floor \
                         x{min_pool}"
                    );
                    failed = true;
                }
            }
        } else {
            println!(
                "  scheduler-pool efficiency: skipped ({cores} core(s) available, gate needs >= 4)"
            );
        }
    }

    // Streaming warm-start gate (ISSUE 6 acceptance): incremental decisions
    // must beat per-event batch re-solves by the baseline floor. Both sides
    // are single-threaded, so unlike the two gates above there is no
    // core-count skip — the in-process ratio holds on any machine.
    if let Some(min_stream) = parse_floor(&text, "min_stream_speedup") {
        let inc = rows.iter().find(|r| r.name == "stream_incremental");
        let batch = rows.iter().find(|r| r.name == "stream_batch");
        if let (Some(inc), Some(batch)) = (inc, batch) {
            let speedup = batch.secs / inc.secs;
            println!(
                "  streaming warm-start: incremental speedup x{speedup:.2} (floor x{min_stream})"
            );
            if speedup < min_stream {
                eprintln!(
                    "bench_smoke: streaming incremental speedup x{speedup:.2} below floor \
                     x{min_stream}"
                );
                failed = true;
            }
        }
    }

    // CSR data-layout gate (ISSUE 9 acceptance): the flattened hot-lane
    // solver core must beat the committed **pre-CSR** observed rows
    // (`pre_csr_dinic` / `pre_csr_min_cost`, normalized measurements of
    // the nested `Vec<Vec<ArcId>>` + arc-struct layout on the identical
    // workload) by the baseline floor. Both sides are normalized by the
    // calibration loop, so machine speed cancels like the per-row
    // regression check above.
    if let Some(min_csr) = parse_floor(&text, "min_csr_speedup") {
        for (row_name, pre_name) in [
            ("csr_dinic", "pre_csr_dinic"),
            ("csr_min_cost", "pre_csr_min_cost"),
        ] {
            let cur = rows.iter().find(|r| r.name == row_name);
            let pre = baseline.iter().find(|(n, _)| n == pre_name);
            if let (Some(cur), Some((_, pre_norm))) = (cur, pre) {
                let speedup = pre_norm / cur.normalized;
                println!(
                    "  csr layout: {row_name} x{speedup:.2} vs pre-CSR reference (floor x{min_csr})"
                );
                if speedup < min_csr {
                    eprintln!(
                        "bench_smoke: {row_name} is only x{speedup:.2} faster than the pre-CSR                          layout, below floor x{min_csr}"
                    );
                    failed = true;
                }
            }
        }
    }

    // Sharded-hierarchy gate (ISSUE 7 acceptance): the hierarchical
    // scheduler with pooled trials must beat the flat single-solver fresh
    // solve by the baseline floor. The hierarchical row uses 4 worker
    // threads, so the gate keeps the same ≥ 4-core skip rule as the other
    // parallel gates.
    if let Some(min_shard) = parse_floor(&text, "min_shard_speedup") {
        if cores >= 4 {
            let hier = rows.iter().find(|r| r.name == "sharded_hier");
            let flat = rows.iter().find(|r| r.name == "sharded_flat");
            if let (Some(hier), Some(flat)) = (hier, flat) {
                let speedup = flat.secs / hier.secs;
                println!(
                    "  sharded hierarchy: hierarchical speedup x{speedup:.2} (floor x{min_shard})"
                );
                if speedup < min_shard {
                    eprintln!(
                        "bench_smoke: sharded hierarchical speedup x{speedup:.2} below floor \
                         x{min_shard}"
                    );
                    failed = true;
                }
            }
        } else {
            println!("  sharded hierarchy: skipped ({cores} core(s) available, gate needs >= 4)");
        }
    }

    if failed {
        eprintln!("bench_smoke: normalized regression over {REGRESSION_LIMIT}x detected");
        std::process::exit(1);
    }
    println!("bench_smoke: within {REGRESSION_LIMIT}x of baseline");
}
