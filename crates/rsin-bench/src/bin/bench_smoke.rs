//! BENCH_SMOKE — self-timed hot-path regression gate for CI.
//!
//! The criterion shim prints human output only, so CI gates on this
//! dedicated binary instead: it wall-clock-times the `hot_path` bench's
//! workloads (the threaded blocking batch at 1/2/4/8 workers plus the
//! reset-per-trial scheduling rows) with min-of-N repetitions and writes a
//! JSON report.
//!
//! Usage: `bench_smoke <out.json> [baseline.json]`
//!
//! Raw seconds are not comparable across machines, so every row also
//! carries a *normalized* time: row seconds divided by the seconds of a
//! fixed single-core integer calibration loop measured in the same process.
//! When a baseline file is given, the gate fails (exit 1) if any row's
//! normalized time regresses more than 25 % over the baseline's — slow CI
//! hardware cancels out of the ratio, real hot-path regressions do not.
//!
//! The determinism contract is asserted on the way: every thread count must
//! produce bit-identical blocking statistics.

use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MaxFlowScheduler, MinCostScheduler, ScheduleScratch, Scheduler};
use rsin_sim::blocking::{run_blocking_threads, BlockingConfig};
use rsin_sim::workload::{random_snapshot, trial_rng};
use rsin_topology::builders::omega;
use rsin_topology::Network;
use std::hint::black_box;
use std::time::Instant;

const THREAD_ROWS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;
const BATCH_TRIALS: u64 = 64;
const REGRESSION_LIMIT: f64 = 1.25;

struct Row {
    name: String,
    secs: f64,
    normalized: f64,
}

/// Fixed single-core integer workload whose wall time anchors the
/// normalization (xorshift64*, enough iterations to dominate timer noise).
fn calibration_secs() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut acc = 0u64;
        for _ in 0..20_000_000u64 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            acc = acc.wrapping_add(x.wrapping_mul(0x2545_F491_4F6C_DD1D));
        }
        black_box(acc);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Min-of-reps wall time of a workload.
fn time_min<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The `hot_path` bench's reset-per-trial batch: schedule a fixed snapshot
/// stream through a reused scratch.
fn reset_batch(net: &Network, scheduler: &dyn Scheduler, scratch: &mut ScheduleScratch) -> usize {
    let mut total = 0;
    for trial in 0..BATCH_TRIALS {
        let mut rng = trial_rng(41, trial);
        let snap = random_snapshot(net, 8, 8, 2, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        total += scheduler.schedule_reusing(&problem, scratch).allocated();
    }
    total
}

fn emit_json(path: &str, calib: f64, rows: &[Row]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"hot_path_smoke\",\n");
    s.push_str(&format!("  \"reps\": {REPS},\n"));
    s.push_str(&format!("  \"calibration_secs\": {calib:.6},\n"));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs\": {:.6}, \"normalized\": {:.6}}}{}\n",
            r.name,
            r.secs,
            r.normalized,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// Extract `(name, normalized)` pairs from a report produced by
/// [`emit_json`] (fixed format, no general JSON parser needed).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some((_, rest)) = rest.split_once("\"normalized\": ") else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            rows.push((name.to_string(), v));
        }
    }
    rows
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hot_path.json".into());
    let baseline_path = std::env::args().nth(2);

    let net = omega(16).unwrap();
    let cfg = BlockingConfig {
        trials: 1024,
        requests: 8,
        resources: 8,
        occupied_circuits: 2,
        seed: 41,
    };
    let max_flow = MaxFlowScheduler::default();
    let min_cost = MinCostScheduler::default();

    println!("bench_smoke: calibrating...");
    let calib = calibration_secs();
    println!("  calibration loop: {calib:.4}s");

    // Determinism contract across the thread rows, checked before timing.
    let reference = run_blocking_threads(&net, &max_flow, &cfg, 1);
    for &t in &THREAD_ROWS[1..] {
        let r = run_blocking_threads(&net, &max_flow, &cfg, t);
        assert_eq!(
            reference.blocking.mean.to_bits(),
            r.blocking.mean.to_bits(),
            "thread count {t} changed the statistics"
        );
    }

    let mut rows = Vec::new();
    for &t in &THREAD_ROWS {
        let secs = time_min(|| {
            black_box(run_blocking_threads(&net, &max_flow, &cfg, t).blocking.mean);
        });
        println!("  blocking_threads_{t}: {secs:.4}s");
        rows.push(Row {
            name: format!("blocking_threads_{t}"),
            secs,
            normalized: secs / calib,
        });
    }
    for (name, s) in [
        ("reset_per_trial_max_flow", &max_flow as &dyn Scheduler),
        ("reset_per_trial_min_cost", &min_cost as &dyn Scheduler),
    ] {
        let mut scratch = ScheduleScratch::new();
        let secs = time_min(|| {
            black_box(reset_batch(&net, s, &mut scratch));
        });
        println!("  {name}: {secs:.4}s");
        rows.push(Row {
            name: name.to_string(),
            secs,
            normalized: secs / calib,
        });
    }

    if let Err(e) = emit_json(&out_path, calib, &rows) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("report written to {out_path}");

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("error: baseline {baseline_path} has no rows");
        std::process::exit(2);
    }
    let mut failed = false;
    for row in &rows {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == row.name) else {
            println!("  {}: no baseline row, skipping", row.name);
            continue;
        };
        let ratio = row.normalized / base;
        let verdict = if ratio > REGRESSION_LIMIT {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {}: normalized {:.4} vs baseline {:.4} (x{:.2}) {}",
            row.name, row.normalized, base, ratio, verdict
        );
    }
    if failed {
        eprintln!("bench_smoke: normalized regression over {REGRESSION_LIMIT}x detected");
        std::process::exit(1);
    }
    println!("bench_smoke: within {REGRESSION_LIMIT}x of baseline");
}
