//! BENCH_SMOKE — self-timed hot-path regression gate for CI.
//!
//! The criterion shim prints human output only, so CI gates on this
//! dedicated binary instead: it wall-clock-times the `hot_path` bench's
//! workloads (the threaded blocking batch at 1/2/4/8 workers plus the
//! reset-per-trial scheduling rows) with min-of-N repetitions and writes a
//! JSON report.
//!
//! Usage: `bench_smoke [--telemetry <path>] <out.json> [baseline.json]`
//!
//! Raw seconds are not comparable across machines, so every row also
//! carries a *normalized* time: row seconds divided by the seconds of a
//! fixed single-core integer calibration loop measured in the same process.
//! When a baseline file is given, the gate fails (exit 1) if any row's
//! normalized time regresses more than 25 % over the baseline's — slow CI
//! hardware cancels out of the ratio, real hot-path regressions do not.
//!
//! Three more contracts are asserted on the way:
//!
//! * determinism — every thread count must produce bit-identical blocking
//!   statistics;
//! * zero-overhead-when-off telemetry — the `NoopProbe` observed scheduling
//!   row must stay within the regression limit of the unobserved row,
//!   in-process (no baseline needed);
//! * parallel efficiency — when the baseline carries a
//!   `min_parallel_speedup` and the machine has ≥ 4 cores, the 4-thread
//!   blocking row must beat the 1-thread row by at least that factor.
//!
//! `--telemetry <path>` additionally runs the observed hot path under a live
//! `rsin_obs::Telemetry` sink and writes its JSON report.

use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MaxFlowScheduler, MinCostScheduler, ScheduleScratch, Scheduler};
use rsin_obs::{NoopProbe, Probe, Telemetry};
use rsin_sim::blocking::{run_blocking_threads, BlockingConfig};
use rsin_sim::workload::{random_snapshot, trial_rng};
use rsin_topology::builders::omega;
use rsin_topology::Network;
use std::hint::black_box;
use std::time::Instant;

const THREAD_ROWS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;
const BATCH_TRIALS: u64 = 64;
const REGRESSION_LIMIT: f64 = 1.25;

struct Row {
    name: String,
    secs: f64,
    normalized: f64,
}

/// Fixed single-core integer workload whose wall time anchors the
/// normalization (xorshift64*, enough iterations to dominate timer noise).
fn calibration_secs() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut acc = 0u64;
        for _ in 0..20_000_000u64 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            acc = acc.wrapping_add(x.wrapping_mul(0x2545_F491_4F6C_DD1D));
        }
        black_box(acc);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Min-of-reps wall time of a workload.
fn time_min<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The `hot_path` bench's reset-per-trial batch: schedule a fixed snapshot
/// stream through a reused scratch.
fn reset_batch(net: &Network, scheduler: &dyn Scheduler, scratch: &mut ScheduleScratch) -> usize {
    let mut total = 0;
    for trial in 0..BATCH_TRIALS {
        let mut rng = trial_rng(41, trial);
        let snap = random_snapshot(net, 8, 8, 2, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        total += scheduler.schedule_reusing(&problem, scratch).allocated();
    }
    total
}

/// [`reset_batch`] through the observed scheduling entry point — with
/// `NoopProbe` this times the zero-overhead-when-off claim, with a live
/// `Telemetry` it produces the exported report.
fn reset_batch_observed(
    net: &Network,
    scheduler: &dyn Scheduler,
    scratch: &mut ScheduleScratch,
    probe: &dyn Probe,
) -> usize {
    let mut total = 0;
    for trial in 0..BATCH_TRIALS {
        let mut rng = trial_rng(41, trial);
        let snap = random_snapshot(net, 8, 8, 2, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        total += scheduler
            .try_schedule_observed(&problem, scratch, probe)
            .expect("well-formed snapshot")
            .allocated();
    }
    total
}

fn emit_json(path: &str, calib: f64, rows: &[Row]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"hot_path_smoke\",\n");
    s.push_str(&format!("  \"reps\": {REPS},\n"));
    s.push_str(&format!("  \"calibration_secs\": {calib:.6},\n"));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs\": {:.6}, \"normalized\": {:.6}}}{}\n",
            r.name,
            r.secs,
            r.normalized,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// Extract `(name, normalized)` pairs from a report produced by
/// [`emit_json`] (fixed format, no general JSON parser needed).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some((_, rest)) = rest.split_once("\"normalized\": ") else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            rows.push((name.to_string(), v));
        }
    }
    rows
}

/// Extract the top-level `min_parallel_speedup` value from a baseline file,
/// if present (fixed format, like [`parse_baseline`]).
fn parse_min_speedup(text: &str) -> Option<f64> {
    let idx = text.find("\"min_parallel_speedup\":")?;
    let rest = text[idx + "\"min_parallel_speedup\":".len()..].trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut telemetry_path = None;
    if let Some(i) = args.iter().position(|a| a == "--telemetry") {
        if i + 1 >= args.len() {
            eprintln!("error: --telemetry needs a path");
            std::process::exit(2);
        }
        telemetry_path = Some(args.remove(i + 1));
        args.remove(i);
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_hot_path.json".into());
    let baseline_path = args.get(1).cloned();

    let net = omega(16).unwrap();
    let cfg = BlockingConfig {
        trials: 1024,
        requests: 8,
        resources: 8,
        occupied_circuits: 2,
        seed: 41,
    };
    let max_flow = MaxFlowScheduler::default();
    let min_cost = MinCostScheduler::default();

    println!("bench_smoke: calibrating...");
    let calib = calibration_secs();
    println!("  calibration loop: {calib:.4}s");

    // Determinism contract across the thread rows, checked before timing.
    let reference = run_blocking_threads(&net, &max_flow, &cfg, 1);
    for &t in &THREAD_ROWS[1..] {
        let r = run_blocking_threads(&net, &max_flow, &cfg, t);
        assert_eq!(
            reference.blocking.mean.to_bits(),
            r.blocking.mean.to_bits(),
            "thread count {t} changed the statistics"
        );
    }

    let mut rows = Vec::new();
    for &t in &THREAD_ROWS {
        let secs = time_min(|| {
            black_box(run_blocking_threads(&net, &max_flow, &cfg, t).blocking.mean);
        });
        println!("  blocking_threads_{t}: {secs:.4}s");
        rows.push(Row {
            name: format!("blocking_threads_{t}"),
            secs,
            normalized: secs / calib,
        });
    }
    for (name, s) in [
        ("reset_per_trial_max_flow", &max_flow as &dyn Scheduler),
        ("reset_per_trial_min_cost", &min_cost as &dyn Scheduler),
    ] {
        let mut scratch = ScheduleScratch::new();
        let secs = time_min(|| {
            black_box(reset_batch(&net, s, &mut scratch));
        });
        println!("  {name}: {secs:.4}s");
        rows.push(Row {
            name: name.to_string(),
            secs,
            normalized: secs / calib,
        });
    }

    // Zero-overhead-when-off gate: the observed hot path under NoopProbe
    // must stay within the regression limit of the plain one, measured in
    // the same process so machine speed cancels exactly.
    let plain_secs = rows
        .iter()
        .find(|r| r.name == "reset_per_trial_max_flow")
        .expect("plain row timed above")
        .secs;
    let observed_secs = {
        let mut scratch = ScheduleScratch::new();
        time_min(|| {
            black_box(reset_batch_observed(
                &net,
                &max_flow,
                &mut scratch,
                &NoopProbe,
            ));
        })
    };
    let overhead = observed_secs / plain_secs;
    println!("  reset_per_trial_max_flow_observed: {observed_secs:.4}s (x{overhead:.3} of plain)");
    rows.push(Row {
        name: "reset_per_trial_max_flow_observed".to_string(),
        secs: observed_secs,
        normalized: observed_secs / calib,
    });
    if overhead > REGRESSION_LIMIT {
        eprintln!(
            "bench_smoke: NoopProbe observed path is x{overhead:.3} of the plain path \
             (limit {REGRESSION_LIMIT}) — telemetry is not zero-overhead-when-off"
        );
        std::process::exit(1);
    }

    if let Err(e) = emit_json(&out_path, calib, &rows) {
        eprintln!("error: could not write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("report written to {out_path}");

    if let Some(path) = &telemetry_path {
        let telemetry = Telemetry::new();
        let mut scratch = ScheduleScratch::new();
        reset_batch_observed(&net, &max_flow, &mut scratch, &telemetry);
        reset_batch_observed(&net, &min_cost, &mut scratch, &telemetry);
        if let Err(e) = std::fs::write(path, telemetry.report().to_json("bench_smoke")) {
            eprintln!("error: could not write telemetry {path}: {e}");
            std::process::exit(2);
        }
        println!("telemetry written to {path}");
    }

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("error: baseline {baseline_path} has no rows");
        std::process::exit(2);
    }
    let mut failed = false;
    for row in &rows {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == row.name) else {
            println!("  {}: no baseline row, skipping", row.name);
            continue;
        };
        let ratio = row.normalized / base;
        let verdict = if ratio > REGRESSION_LIMIT {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {}: normalized {:.4} vs baseline {:.4} (x{:.2}) {}",
            row.name, row.normalized, base, ratio, verdict
        );
    }
    // Parallel-efficiency gate (ROADMAP item): with enough cores, the
    // 4-thread blocking row must actually outrun the 1-thread row. The
    // in-process secs ratio is machine-independent; the floor comes from
    // the baseline file so CI hardware changes tune one number, not code.
    if let Some(min_speedup) = parse_min_speedup(&text) {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 4 {
            let t1 = rows.iter().find(|r| r.name == "blocking_threads_1");
            let t4 = rows.iter().find(|r| r.name == "blocking_threads_4");
            if let (Some(t1), Some(t4)) = (t1, t4) {
                let speedup = t1.secs / t4.secs;
                println!(
                    "  parallel efficiency: 4-thread speedup x{speedup:.2} (floor x{min_speedup})"
                );
                if speedup < min_speedup {
                    eprintln!(
                        "bench_smoke: 4-thread speedup x{speedup:.2} below floor x{min_speedup}"
                    );
                    failed = true;
                }
            }
        } else {
            println!("  parallel efficiency: skipped ({cores} core(s) available, gate needs >= 4)");
        }
    }

    if failed {
        eprintln!("bench_smoke: normalized regression over {REGRESSION_LIMIT}x detected");
        std::process::exit(1);
    }
    println!("bench_smoke: within {REGRESSION_LIMIT}x of baseline");
}
