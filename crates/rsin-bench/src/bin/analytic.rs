//! ANALYTIC — Patel's closed-form banyan model vs. simulated routing.
//!
//! The paper cites Patel \[37\] and Dias & Jump \[11\] for the performance
//! of address-mapped interconnection networks. This experiment pits
//! Patel's per-stage recurrence against this workspace's own simulation:
//! every processor issues a request with probability `p0` toward a
//! uniformly random destination; requests are served in random order by
//! destination-tag routing (the conventional discipline). The measured
//! acceptance rate should track the analytic curve — a calibration check
//! that the rebuilt simulator behaves like the published models — and the
//! RSIN's flow-based scheduler (free to pick *any* free resource) should
//! beat both.

use rand::seq::SliceRandom;
use rand::Rng;
use rsin_bench::emit_table;
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MaxFlowScheduler, Scheduler};
use rsin_sim::analytic::patel_acceptance;
use rsin_sim::metrics::Sample;
use rsin_sim::workload::trial_rng;
use rsin_topology::builders::omega;
use rsin_topology::CircuitState;

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000u64);
    let n = 16usize;
    let stages = 4usize;
    let net = omega(n).unwrap();
    println!(
        "ANALYTIC — acceptance on omega-{n} under uniform random destinations \
         ({trials} trials/row)\n"
    );
    let mut rows = Vec::new();
    for p0 in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
        let model = patel_acceptance(p0, 2, stages);
        let mut tag = Sample::new();
        let mut rsin = Sample::new();
        for trial in 0..trials {
            let mut rng = trial_rng(4_000 + (p0 * 10.0) as u64, trial);
            // Offered load: each processor requests with probability p0.
            let requesting: Vec<usize> =
                (0..n).filter(|_| rng.random_range(0.0..1.0) < p0).collect();
            if requesting.is_empty() {
                continue;
            }
            // Conventional: uniform random destination per request, tag
            // routing, random service order, blocked on conflict.
            let mut order = requesting.clone();
            order.shuffle(&mut rng);
            let mut cs = CircuitState::new(&net);
            let mut accepted = 0usize;
            let mut taken = vec![false; n];
            for &p in &order {
                let dest = rng.random_range(0..n);
                if taken[dest] {
                    continue; // destination conflict: output busy
                }
                if let Some(path) = cs.find_path(p, dest) {
                    cs.establish(&path).unwrap();
                    taken[dest] = true;
                    accepted += 1;
                }
            }
            tag.push(accepted as f64 / requesting.len() as f64);
            // RSIN: the same offered requests, but any free resource will
            // do and the mapping is the optimal flow.
            let free_cs = CircuitState::new(&net);
            let all: Vec<usize> = (0..n).collect();
            let problem = ScheduleProblem::homogeneous(&free_cs, &requesting, &all);
            let out = MaxFlowScheduler::default().schedule(&problem);
            rsin.push(out.allocated() as f64 / requesting.len() as f64);
        }
        rows.push(vec![
            format!("{p0:.1}"),
            format!("{:.3}", model),
            format!("{:.3} ±{:.3}", tag.mean(), tag.ci95_half_width()),
            format!("{:.3} ±{:.3}", rsin.mean(), rsin.ci95_half_width()),
        ]);
    }
    emit_table(
        "analytic",
        &[
            "input load p0",
            "Patel model",
            "simulated tag routing",
            "RSIN optimal",
        ],
        &rows,
    );
    println!(
        "\nshape: the simulated conventional discipline tracks Patel's closed form \
         (same declining curve; the model's synchronous single-pass arbitration \
         differs slightly from sequential circuit establishment), while the RSIN's \
         destination-free optimal mapping accepts essentially everything — the \
         paper's case for resource sharing without address mapping."
    );
}
