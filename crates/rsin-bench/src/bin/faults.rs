//! FAULTS — graceful degradation under a live fail/repair process.
//!
//! Section IV prefers the distributed implementation "for reasons such as
//! fault tolerance and modularity". This experiment quantifies that claim
//! dynamically: each trial runs the full Section II system model while a
//! seed-derived [`rsin_topology::FaultPlan`] fails and repairs links
//! mid-run. The reusable
//! transformation absorbs every toggle as an incremental capacity patch
//! (never a rebuild — asserted below), blocked requests are retried over
//! alternate paths before being shed, and the report compares allocations
//! against the fault-free baseline of the *same* arrival stream.
//!
//! Usage: `faults [--policy none|bfs|priced]
//! [--fault-model independent|correlated|byzantine]
//! [--topology legacy|omega|extra-stage|3dp|diversity] [--telemetry <path>]
//! [--trace <path>] [--json <path>] [--replicas <n>] [--threads <n>]
//! [trials] [threads] [json-path]`
//!
//! `--policy` selects how blocked requests are handled during faulty
//! cycles (default `bfs`): shed immediately (`none`), BFS-retried to any
//! type-compatible alternate (`bfs`), or recovered by a residual
//! Transformation-2 min-cost solve that fills degraded capacity
//! preference-first (`priced`; see
//! `Scheduler::try_schedule_degraded_priced`). The report's
//! `recovery_cost` column prices the recoveries either retry made.
//!
//! `--fault-model` selects the fault process (DESIGN §15; default
//! `independent`, the historical per-link renewal streams). `correlated`
//! keeps the independent model's aggregate outage-event rate (`rate ×
//! num_links`, spread uniformly over the interior power domains) but each
//! event takes a whole domain down at once — same event frequency,
//! domain-sized blast radius — so the sweep isolates how well a topology
//! *masks* a regional outage; `byzantine` turns the rates into per-box
//! misrouting-onset rates — boxes lie instead of dying, and the
//! differential conformance detector's misrouted/flagged/detection-latency
//! columns report how fast the liars are caught.
//!
//! `--topology` selects the network column (default `legacy`, the
//! historical omega-8 + baseline-8 pair). `diversity` sweeps the
//! path-diversity ladder omega-8 → omega-8+1 (extra-stage) → 3dp-omega-8
//! (three disjoint planes) — the EXPERIMENTS.md PATH-DIVERSITY table.
//!
//! Trials follow the `(seed, trial)` RNG-stream convention shared with the
//! `blocking` and `dynamic` experiments, and per-trial results merge
//! sequentially in trial order ([`merge_faulted`]), so every number — and
//! every byte of the JSON report, which deliberately records no thread
//! count — is bit-identical for any `--threads` value; the CI determinism
//! job diffs the file across thread counts. `--replicas` is a synonym for
//! the trial count (each trial *is* an independent `(seed, replica)`
//! replication). The JSON report goes to `--json`/`json-path` (default
//! `faults_report.json`).
//!
//! With `--telemetry <path>`, one bounded probed capture (omega-8,
//! max-flow, rate 0.005) re-runs after the sweep under a live
//! `rsin_obs::Telemetry` sink and its JSON report — per-solver phase
//! counters, cycle-latency histograms, and the fault/repair event trace —
//! is written to the given path. With `--trace <path>`, the same capture
//! configuration re-runs one trial under a flight recorder and the
//! per-request lifecycle (submit/allocate/release spans plus shed and
//! recovered markers) is exported as Chrome trace-event JSON for Perfetto.
//! Probes and tracers only observe, so the sweep's numbers are unaffected.

use rsin_bench::{emit_table, network_by_name};
use rsin_core::scheduler::{
    AddressMappedScheduler, GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler,
};
use rsin_obs::{FlightRecorder, NoopProbe, Telemetry};
use rsin_sim::replicate::merge_faulted;
use rsin_sim::system::{
    fault_plan_seed, run_faulted_trials_model, run_faulted_trials_policy_probed, DegradedPolicy,
    DynamicConfig, FaultModel, FaultedStats, SystemSim,
};
use rsin_topology::{FaultPlan, FaultPlanConfig};

const SEED: u64 = 42;
const SIM_TIME: f64 = 400.0;
const WARMUP: f64 = 40.0;
const MEAN_REPAIR: f64 = 25.0;
const RATES: [f64; 5] = [0.0, 0.001, 0.002, 0.005, 0.01];
/// The correlated sweep keeps the same aggregate outage-event rate as the
/// independent model, but each event downs a whole domain — roughly an
/// order of magnitude more damage per event — so its meaningful operating
/// envelope (degraded-but-alive rather than saturated) sits an order of
/// magnitude lower in rate.
const CORRELATED_RATES: [f64; 5] = [0.0, 0.0001, 0.00025, 0.0004, 0.0005];
/// Adjacent switching boxes per correlated power domain (half an omega
/// stage; always within one 3dp plane).
const DOMAIN_BOXES: usize = 2;

struct Row {
    network: String,
    scheduler: &'static str,
    rate: f64,
    survival: f64,
    completed: u64,
    baseline_completed: u64,
    blocking: f64,
    shed: u64,
    recovered: u64,
    failures: u64,
    repairs: u64,
    mean_recovery: f64,
    recoveries_observed: u64,
    transform_rebuilds: u64,
    recovery_cost: i64,
    misrouted: u64,
    byz_flagged: u64,
    byz_false_positives: u64,
    mean_detection_cycles: f64,
}

fn aggregate(
    network: &str,
    scheduler: &'static str,
    rate: f64,
    trials: &[FaultedStats],
    baseline: &[FaultedStats],
) -> Row {
    // The shared replica merge: sums, plus the recovery mean weighted by
    // each trial's observed recoveries, all in trial order.
    let m = merge_faulted(trials);
    let b = merge_faulted(baseline);
    Row {
        network: network.to_string(),
        scheduler,
        rate,
        survival: if b.stats.completed > 0 {
            m.stats.completed as f64 / b.stats.completed as f64
        } else {
            1.0
        },
        completed: m.stats.completed,
        baseline_completed: b.stats.completed,
        blocking: m.stats.mean_blocking.mean,
        shed: m.shed_total,
        recovered: m.recovered_total,
        failures: m.failures,
        repairs: m.repairs,
        mean_recovery: m.mean_recovery,
        recoveries_observed: m.recoveries_observed,
        transform_rebuilds: m.transform_rebuilds,
        recovery_cost: m.recovery_cost,
        misrouted: m.misrouted,
        byz_flagged: m.byz_flagged,
        byz_false_positives: m.byz_false_positives,
        mean_detection_cycles: m.mean_detection_cycles,
    }
}

/// The fault-plan configuration for one sweep rate under the chosen model:
/// fail-stop models read `rate` as the per-link hazard, the Byzantine model
/// as the per-box misrouting-onset hazard.
fn fault_cfg_for(model: FaultModel, rate: f64) -> FaultPlanConfig {
    match model {
        FaultModel::Independent | FaultModel::Correlated { .. } => {
            FaultPlanConfig::links(rate, MEAN_REPAIR, SIM_TIME)
        }
        FaultModel::Byzantine => FaultPlanConfig {
            link_failure_rate: 0.0,
            box_failure_rate: rate,
            mean_repair: MEAN_REPAIR,
            horizon: SIM_TIME,
        },
    }
}

// Deliberately no thread count in the report: it must be byte-identical
// however many workers produced it (the CI determinism job diffs it).
fn json_report(rows: &[Row], trials: usize, policy: DegradedPolicy, model: FaultModel) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"faults\",\n");
    s.push_str(&format!("  \"policy\": \"{}\",\n", policy.name()));
    s.push_str(&format!("  \"fault_model\": \"{}\",\n", model.name()));
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    s.push_str(&format!("  \"trials\": {trials},\n"));
    s.push_str(&format!("  \"sim_time\": {SIM_TIME},\n"));
    s.push_str(&format!("  \"warmup\": {WARMUP},\n"));
    s.push_str(&format!("  \"mean_repair\": {MEAN_REPAIR},\n"));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"network\": \"{}\", \"scheduler\": \"{}\", \"failure_rate\": {}, \
             \"survival\": {:.6}, \"completed\": {}, \"baseline_completed\": {}, \
             \"blocking\": {:.6}, \
             \"shed\": {}, \"recovered\": {}, \"recovery_cost\": {}, \"failures\": {}, \
             \"repairs\": {}, \"mean_recovery\": {:.6}, \"recoveries_observed\": {}, \
             \"transform_rebuilds\": {}, \"misrouted\": {}, \"byz_flagged\": {}, \
             \"byz_false_positives\": {}, \"mean_detection_cycles\": {:.6}}}{}\n",
            r.network,
            r.scheduler,
            r.rate,
            r.survival,
            r.completed,
            r.baseline_completed,
            r.blocking,
            r.shed,
            r.recovered,
            r.recovery_cost,
            r.failures,
            r.repairs,
            r.mean_recovery,
            r.recoveries_observed,
            r.transform_rebuilds,
            r.misrouted,
            r.byz_flagged,
            r.byz_false_positives,
            r.mean_detection_cycles,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pop `--flag value` out of `args`; returns the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let policy = match take_flag(&mut args, "--policy").as_deref() {
        None | Some("bfs") => DegradedPolicy::Bfs,
        Some("none") => DegradedPolicy::None,
        Some("priced") => DegradedPolicy::Priced,
        Some(other) => {
            eprintln!("error: unknown --policy {other} (expected none|bfs|priced)");
            std::process::exit(2);
        }
    };
    let model = match take_flag(&mut args, "--fault-model").as_deref() {
        None | Some("independent") => FaultModel::Independent,
        Some("correlated") => FaultModel::Correlated {
            domain_boxes: DOMAIN_BOXES,
        },
        Some("byzantine") => FaultModel::Byzantine,
        Some(other) => {
            eprintln!(
                "error: unknown --fault-model {other} (expected independent|correlated|byzantine)"
            );
            std::process::exit(2);
        }
    };
    let networks: Vec<&'static str> = match take_flag(&mut args, "--topology").as_deref() {
        None | Some("legacy") => vec!["omega-8", "baseline-8"],
        Some("omega") => vec!["omega-8"],
        Some("extra-stage") => vec!["omega-8+1"],
        Some("3dp") => vec!["3dp-omega-8"],
        // The path-diversity ladder, least to most redundant.
        Some("diversity") => vec!["omega-8", "omega-8+1", "3dp-omega-8"],
        Some(other) => {
            eprintln!(
                "error: unknown --topology {other} (expected legacy|omega|extra-stage|3dp|diversity)"
            );
            std::process::exit(2);
        }
    };
    let telemetry_path = take_flag(&mut args, "--telemetry");
    let trace_path = take_flag(&mut args, "--trace");
    let replicas_flag: Option<usize> =
        take_flag(&mut args, "--replicas").and_then(|v| v.parse().ok());
    let threads_flag: Option<usize> =
        take_flag(&mut args, "--threads").and_then(|v| v.parse().ok());
    let json_flag = take_flag(&mut args, "--json");
    let trials: usize = replicas_flag
        .or_else(|| args.first().and_then(|a| a.parse().ok()))
        .unwrap_or(6);
    let threads = threads_flag
        .or_else(|| args.get(1).and_then(|a| a.parse().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let json_path = json_flag
        .or_else(|| args.get(2).cloned())
        .unwrap_or_else(|| "faults_report.json".into());
    let optimal = MaxFlowScheduler::default();
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(17));
    // Address-mapped binds a resource *before* routing, so dead links under
    // its blind bindings are exactly what the degraded retry rescues.
    let addr = AddressMappedScheduler::new(SEED);
    let schedulers: [(&'static str, &dyn Scheduler); 3] = [
        ("max-flow", &optimal),
        ("greedy", &greedy),
        ("addr-map", &addr),
    ];
    let cfg = DynamicConfig {
        arrival_rate: 0.5,
        mean_transmission: 0.2,
        mean_service: 1.0,
        sim_time: SIM_TIME,
        warmup: WARMUP,
        seed: SEED,
        types: 1,
        // Four levels give the degraded retries a non-trivial cost surface
        // (priority/preference are deterministic in the index, so the
        // max-flow and heuristic disciplines' decisions are unchanged —
        // only the cost accounting and the priced recovery's choice of
        // alternate depend on it).
        priority_levels: 4,
        ..DynamicConfig::default()
    };
    println!(
        "FAULTS — dynamic fail/repair sweep ({} trials, horizon {SIM_TIME}, mean repair \
         {MEAN_REPAIR}, policy {}, fault model {}, {threads} worker thread(s))\n",
        trials,
        policy.name(),
        model.name()
    );
    let mut rows = Vec::new();
    for name in &networks {
        let net = network_by_name(name).unwrap();
        for (sname, scheduler) in schedulers {
            // Rate 0 is the fault-free baseline of the same arrival streams
            // (an empty plan under every model).
            let baseline = run_faulted_trials_model(
                &net,
                scheduler,
                &cfg,
                &fault_cfg_for(model, 0.0),
                trials,
                threads,
                policy,
                model,
            );
            let rates: &[f64] = if matches!(model, FaultModel::Correlated { .. }) {
                &CORRELATED_RATES
            } else {
                &RATES
            };
            for &rate in rates {
                let fcfg = fault_cfg_for(model, rate);
                let stats = run_faulted_trials_model(
                    &net, scheduler, &cfg, &fcfg, trials, threads, policy, model,
                );
                // PR invariant: faults are capacity patches, never rebuilds
                // — correlated domain events expand to member toggles on
                // the same patch path, and Byzantine onsets touch no link
                // state at all. The flow-based scheduler builds its
                // Transformation-1 graph exactly once per trial and never
                // touches the min-cost shape (its priced override skips the
                // residual — Theorem 2 makes recovery impossible). A
                // heuristic builds nothing under none/bfs; under the priced
                // policy it lazily builds the residual Transformation-2
                // graph at most once, on the first faulty cycle with
                // blockage.
                let ok = |t: &FaultedStats| match (sname, policy) {
                    ("max-flow", _) => t.transform_rebuilds == 1,
                    (_, DegradedPolicy::Priced) => t.transform_rebuilds <= 1,
                    _ => t.transform_rebuilds == 0,
                };
                assert!(
                    stats.iter().all(ok),
                    "{name}/{sname}: fault toggles must not rebuild the transform"
                );
                rows.push(aggregate(name, sname, rate, &stats, &baseline));
            }
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                r.scheduler.to_string(),
                format!("{:.4}", r.rate),
                format!("{:.3}", r.survival),
                format!("{:.4}", r.blocking),
                r.shed.to_string(),
                r.recovered.to_string(),
                r.recovery_cost.to_string(),
                r.failures.to_string(),
                format!("{:.2}", r.mean_recovery),
                r.transform_rebuilds.to_string(),
                r.misrouted.to_string(),
                r.byz_flagged.to_string(),
                format!("{:.1}", r.mean_detection_cycles),
            ]
        })
        .collect();
    emit_table(
        "faults",
        &[
            "network",
            "scheduler",
            "fail rate",
            "survival",
            "blocking",
            "shed",
            "recovered",
            "recovery cost",
            "failures",
            "mean recovery",
            "rebuilds",
            "misrouted",
            "flagged",
            "detect cyc",
        ],
        &table,
    );
    let report = json_report(&rows, trials, policy, model);
    if let Err(e) = std::fs::write(&json_path, &report) {
        eprintln!("warning: could not write {json_path}: {e}");
    } else {
        println!("\nJSON report written to {json_path}");
    }
    if let Some(tpath) = telemetry_path {
        // One bounded probed capture at a rate that reliably produces both
        // failures and repairs within the horizon; the sweep above already
        // ran unprobed, so this re-run only feeds the telemetry sink.
        let telemetry = Telemetry::new();
        let net = network_by_name("omega-8").unwrap();
        let fcfg = FaultPlanConfig::links(0.005, MEAN_REPAIR, SIM_TIME);
        let _ = run_faulted_trials_policy_probed(
            &net, &optimal, &cfg, &fcfg, trials, threads, policy, &telemetry,
        );
        let json = telemetry.report().to_json("faults");
        if let Err(e) = std::fs::write(&tpath, &json) {
            eprintln!("warning: could not write {tpath}: {e}");
        } else {
            println!("telemetry written to {tpath} (omega-8 / max-flow / rate 0.005)");
        }
    }
    if let Some(tpath) = trace_path {
        // One traced trial of the telemetry capture's configuration: the
        // request lifecycle of a faulted run, Perfetto-loadable.
        let recorder = FlightRecorder::new(1 << 20);
        let net = network_by_name("omega-8").unwrap();
        let fcfg = FaultPlanConfig::links(0.005, MEAN_REPAIR, SIM_TIME);
        let plan = FaultPlan::generate(&net, &fcfg, fault_plan_seed(cfg.seed, 0));
        let sim = SystemSim::new(&net, cfg);
        sim.try_run_faulted_trial_policy_traced(&optimal, &plan, 0, policy, &NoopProbe, &recorder)
            .expect("traced capture trial");
        let snap = recorder.snapshot();
        let json = snap.to_chrome_json("faults/omega-8/max-flow");
        if let Err(e) = std::fs::write(&tpath, &json) {
            eprintln!("warning: could not write {tpath}: {e}");
        } else {
            println!(
                "lifecycle trace written to {tpath} ({} spans, {} dropped)",
                snap.events.len(),
                snap.dropped
            );
        }
    }
    println!(
        "\nshape: survival stays near 1.0 at low failure rates and degrades\n\
         gracefully as rates rise; the retry pass rescues part of the greedy\n\
         scheduler's blockages, and every fault toggle is an incremental\n\
         capacity patch (max-flow rebuilds == trials per row: one initial\n\
         build per trial, none on faults)."
    );
}
