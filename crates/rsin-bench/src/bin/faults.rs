//! FAULTS — graceful degradation under link/switchbox failures.
//!
//! Section IV: a distributed implementation is preferred over the monitor
//! "for reasons such as fault tolerance and modularity". This experiment
//! injects random link faults (and whole dead switchboxes) and measures
//! how allocation degrades: the flow-based optimum automatically reroutes
//! around faults (they are just absent arcs in the transformed network),
//! and the token engine remains exactly equivalent to it on the surviving
//! topology.

use rand::Rng;
use rsin_bench::{emit_table, network_by_name, pct};
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler};
use rsin_distrib::TokenEngine;
use rsin_sim::metrics::Sample;
use rsin_sim::workload::trial_rng;
use rsin_topology::{CircuitState, LinkId};

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1500u64);
    let optimal = MaxFlowScheduler::default();
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(17));
    println!("FAULTS — blocking vs injected faults (benes-8, 5 req / 5 res, {trials} trials)\n");
    let net = network_by_name("benes-8").unwrap();
    let mut rows = Vec::new();
    for faults in 0..=6usize {
        let mut opt_b = Sample::new();
        let mut heu_b = Sample::new();
        let mut equal = true;
        for trial in 0..trials {
            let mut rng = trial_rng(7_700 + faults as u64, trial);
            let mut cs = CircuitState::new(&net);
            // Fail random interior links.
            for _ in 0..faults {
                let l = LinkId(rng.random_range(0..net.num_links() as u32));
                cs.fail_link(l);
            }
            let req: Vec<usize> = (0..8).filter(|_| rng.random_range(0..8) < 5).collect();
            let free: Vec<usize> = (0..8).filter(|_| rng.random_range(0..8) < 5).collect();
            let problem = ScheduleProblem::homogeneous(&cs, &req, &free);
            let denom = req.len().min(free.len());
            if denom == 0 {
                continue;
            }
            let o = optimal.schedule(&problem);
            let h = greedy.schedule(&problem);
            let d = TokenEngine::run(&problem);
            equal &= d.outcome.assignments.len() == o.allocated();
            opt_b.push(o.blocking_fraction(denom));
            heu_b.push(h.blocking_fraction(denom));
        }
        rows.push(vec![
            faults.to_string(),
            pct(opt_b.mean(), opt_b.ci95_half_width()),
            pct(heu_b.mean(), heu_b.ci95_half_width()),
            if equal { "yes".into() } else { "NO".into() },
        ]);
    }
    emit_table(
        "faults",
        &["faulty links", "optimal", "greedy", "token == optimal"],
        &rows,
    );
    println!(
        "\nshape: the redundant-path Benes degrades gracefully under the optimal\n\
         scheduler (faults are just missing arcs in the flow network), the greedy\n\
         heuristic loses more, and the distributed engine stays exactly optimal\n\
         on every surviving topology — the paper's fault-tolerance argument."
    );
}
