//! HETERO — heterogeneous scheduling via multicommodity flow.
//!
//! Section III-D: multiple resource types become commodities; the LP's
//! optimal vertex is integral on restricted (MIN) topologies and the
//! simplex method solves it efficiently. This experiment sweeps the number
//! of resource types on 8×8 networks and compares the joint LP optimum
//! against the sequential per-type heuristic, reporting LP integrality.

use rsin_bench::{emit_table, standard_networks};
use rsin_core::model::{FreeResource, ScheduleProblem, ScheduleRequest};
use rsin_core::scheduler::{MultiCommodityScheduler, Scheduler};
use rsin_core::transform::hetero::transform_max;
use rsin_flow::multicommodity;
use rsin_sim::metrics::Sample;
use rsin_sim::workload::{random_snapshot, random_types, trial_rng};

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200u64);
    println!("HETERO — multicommodity scheduling, {trials} trials per cell\n");
    let mut rows = Vec::new();
    for net in standard_networks() {
        for types in [2usize, 3] {
            let mut alloc = Sample::new();
            let mut bound = Sample::new();
            let mut integral = 0u64;
            for trial in 0..trials {
                let mut rng = trial_rng(9_000 + types as u64, trial);
                let snap = random_snapshot(&net, 6, 6, 0, &mut rng);
                let req_types = random_types(&snap.requesting, types, &mut rng);
                let res_types = random_types(&snap.free, types, &mut rng);
                let problem = ScheduleProblem {
                    circuits: &snap.circuits,
                    requests: req_types
                        .iter()
                        .map(|&(p, ty)| ScheduleRequest {
                            processor: p,
                            priority: 1,
                            resource_type: ty,
                        })
                        .collect(),
                    free: res_types
                        .iter()
                        .map(|&(r, ty)| FreeResource {
                            resource: r,
                            preference: 1,
                            resource_type: ty,
                        })
                        .collect(),
                };
                let t = transform_max(&problem);
                if let Ok(sol) = multicommodity::max_flow(&t.flow, &t.commodities) {
                    if sol.integral {
                        integral += 1;
                    }
                }
                let out = MultiCommodityScheduler::default().schedule(&problem);
                rsin_core::mapping::verify(&out.assignments, &problem).expect("valid");
                alloc.push(out.allocated() as f64);
                bound.push(problem.demand_bound() as f64);
            }
            rows.push(vec![
                net.name().to_string(),
                types.to_string(),
                format!("{:.2}", alloc.mean()),
                format!("{:.2}", bound.mean()),
                format!("{:.1}%", 100.0 * integral as f64 / trials as f64),
            ]);
        }
    }
    emit_table(
        "hetero",
        &[
            "network",
            "types",
            "allocated (LP)",
            "type-demand bound",
            "LP integral",
        ],
        &rows,
    );
    println!(
        "\npaper shape: on MIN topologies the multicommodity LP vertex is integral \
         (Evans-Jarvis class) and allocation tracks the per-type demand bound \
         up to genuine network blockage."
    );
}
