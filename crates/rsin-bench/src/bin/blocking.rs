//! BLOCK — the paper's headline blocking-probability comparison.
//!
//! "Simulation results showed that the average blocking probability can be
//! as low as 2 percent for an MRSIN embedded in an 8×8 cube network …
//! If a heuristic routing algorithm is used, then the average blocking
//! probability increases to around 20 percent." And for "a typical
//! interconnection structure, such as the Omega network, network blockages
//! can be reduced to less than 5 percent."
//!
//! This experiment sweeps request/resource counts on a free network and
//! reports the mean blocking fraction per scheduler per topology. Absolute
//! values depend on the (unavailable) original workload mix; the *shape* —
//! optimal in the low single digits, heuristics an order of magnitude
//! worse — is the reproduction target.

use rsin_bench::{emit_table, pct, standard_networks};
use rsin_core::scheduler::{
    AddressMappedScheduler, GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler,
};
use rsin_distrib::engine::DistributedScheduler;
use rsin_sim::blocking::{run_blocking_threads, BlockingConfig};
use rsin_sim::metrics::Sample;

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000u64);
    // Worker threads for each Monte-Carlo batch (arg 2). The statistics are
    // bit-identical for any value; default to the host's parallelism.
    let threads = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let optimal = MaxFlowScheduler::default();
    let distributed = DistributedScheduler;
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(7));
    let address = AddressMappedScheduler::new(7);
    let schedulers: Vec<&dyn Scheduler> = vec![&optimal, &distributed, &greedy, &address];

    println!(
        "BLOCK — mean blocking fraction, free network, {trials} trials per cell, \
         {threads} worker thread(s)"
    );
    println!("(requests = resources = k, drawn uniformly; denominator = min(x, y))\n");
    let mut rows = Vec::new();
    for net in standard_networks() {
        for s in &schedulers {
            // Average over k = 2..=8 with per-k trials.
            let mut all = Sample::new();
            let mut per_k = Vec::new();
            for k in 2..=8usize {
                let cfg = BlockingConfig {
                    trials: trials / 7,
                    requests: k,
                    resources: k,
                    occupied_circuits: 0,
                    seed: 100 + k as u64,
                };
                let st = run_blocking_threads(&net, *s, &cfg, threads);
                all.push(st.blocking.mean);
                per_k.push(format!("{:.1}", 100.0 * st.blocking.mean));
            }
            rows.push(vec![
                net.name().to_string(),
                s.name().to_string(),
                pct(all.mean(), all.ci95_half_width()),
                per_k.join("/"),
            ]);
        }
        rows.push(vec![String::new(); 4]);
    }
    emit_table(
        "blocking",
        &["network", "scheduler", "mean blocking", "per-k% (k=2..8)"],
        &rows,
    );
    println!(
        "\npaper targets: optimal ≈2% (8×8 cube), <5% (Omega); heuristic ≈20%. \
         distributed(token) must equal max-flow(dinic) exactly."
    );
}
