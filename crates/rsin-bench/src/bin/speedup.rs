//! SPEEDUP — distributed token propagation vs the monitor architecture.
//!
//! Section IV-B: "the token-propagation architecture has two factors that
//! contribute to a significant speedup … 1) the augmenting paths are
//! searched in parallel, and 2) the time complexity is measured in gate
//! delays instead of instruction cycles. As a result, the scheduling
//! algorithm will run at a much higher speed than a software implementation
//! of the network flow algorithm."
//!
//! For network sizes 8–64, runs the same random scheduling instances
//! through the software max-flow (instruction-counted) and the token
//! engine (clock-counted), and prices both with the mid-1980s cost model.

use rsin_bench::emit_table;
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MaxFlowScheduler, Scheduler};
use rsin_distrib::TokenEngine;
use rsin_sim::cost::CostModel;
use rsin_sim::metrics::Sample;
use rsin_sim::workload::{random_snapshot, trial_rng};
use rsin_topology::builders::omega;

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300u64);
    let model = CostModel::default();
    println!(
        "SPEEDUP — monitor ({} ns/instruction) vs token propagation ({} ns/clock), {trials} trials\n",
        model.instruction_ns, model.clock_ns
    );
    let mut rows = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let net = omega(n).unwrap();
        let mut instr = Sample::new();
        let mut clocks = Sample::new();
        let mut speed = Sample::new();
        for trial in 0..trials {
            let mut rng = trial_rng(500 + n as u64, trial);
            let snap = random_snapshot(&net, n / 2, n / 2, n / 8, &mut rng);
            let problem =
                ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
            let sw = MaxFlowScheduler::default().schedule(&problem);
            let hw = TokenEngine::run(&problem);
            assert_eq!(sw.allocated(), hw.outcome.assignments.len(), "Theorem 4");
            instr.push(sw.estimated_instructions as f64);
            clocks.push(hw.clocks as f64);
            speed.push(model.speedup(sw.estimated_instructions, hw.clocks));
        }
        rows.push(vec![
            format!("omega-{n}"),
            format!("{:.0}", instr.mean()),
            format!("{:.0}", clocks.mean()),
            format!("{:.1} us", model.monitor_us(instr.mean() as u64)),
            format!("{:.2} us", model.distributed_us(clocks.mean() as u64)),
            format!("{:.0}x", speed.mean()),
        ]);
    }
    emit_table(
        "speedup",
        &[
            "network",
            "instructions",
            "clock periods",
            "monitor",
            "distributed",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\npaper shape: orders-of-magnitude speedup, growing with network size \
         (parallel path search + gate-delay cycles). allocation counts verified equal."
    );
}
