//! OVERHEAD — total scheduling overhead of the two architectures over a
//! whole workload (Fig. 6 monitor vs Fig. 9 distributed engine).
//!
//! The SPEEDUP experiment prices a *single* scheduling cycle; this one
//! drives the same request/release workload through the explicit monitor
//! (`rsin_sim::monitor::Monitor`, deferred-event cycle semantics) and
//! through the live distributed system
//! (`rsin_distrib::system::DistributedSystem`), each maintaining its own
//! circuit state, and compares the accumulated scheduling time.

use rand::Rng;
use rsin_bench::emit_table;
use rsin_core::model::ScheduleRequest;
use rsin_core::scheduler::MaxFlowScheduler;
use rsin_distrib::DistributedSystem;
use rsin_sim::cost::CostModel;
use rsin_sim::monitor::Monitor;
use rsin_sim::workload::trial_rng;
use rsin_topology::builders::omega;

fn main() {
    let rounds = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500u64);
    let model = CostModel::default();
    println!(
        "OVERHEAD — {rounds} request/release rounds, monitor vs distributed\n\
         ({} ns/instruction, {} ns/clock)\n",
        model.instruction_ns, model.clock_ns
    );
    let mut rows = Vec::new();
    for n in [8usize, 16, 32] {
        let net = omega(n).unwrap();
        let mut monitor = Monitor::new(&net, model);
        let mut distributed = DistributedSystem::new(&net);
        let mut rng = trial_rng(88, n as u64);
        // Both architectures receive the identical arrival/release stream.
        let mut mon_served: Vec<(usize, usize)> = Vec::new();
        let mut dist_served: Vec<(usize, usize)> = Vec::new();
        let mut mon_alloc = 0u64;
        let mut dist_alloc = 0u64;
        for _ in 0..rounds {
            for _ in 0..2 {
                let p = rng.random_range(0..n);
                monitor.submit(ScheduleRequest {
                    processor: p,
                    priority: 1,
                    resource_type: 0,
                });
                distributed.submit(p);
            }
            if mon_served.len() > n / 2 {
                for (p, r) in mon_served.drain(..) {
                    monitor.transmission_done(p);
                    monitor.release_resource(r);
                }
                for (p, r) in dist_served.drain(..) {
                    distributed.transmission_done(p);
                    distributed.release_resource(r);
                }
            }
            if let Some(cycle) = monitor.cycle(&MaxFlowScheduler::default()) {
                mon_alloc += cycle.outcome.allocated() as u64;
                for a in &cycle.outcome.assignments {
                    mon_served.push((a.processor, a.resource));
                }
            }
            if let Some(out) = distributed.cycle() {
                dist_alloc += out.allocated() as u64;
                for a in &out.assignments {
                    dist_served.push((a.processor, a.resource));
                }
            }
        }
        let dist_us = model.distributed_us(distributed.clocks);
        rows.push(vec![
            format!("omega-{n}"),
            format!("{} ({} alloc)", monitor.cycles, mon_alloc),
            format!("{:.0} us", monitor.scheduling_us),
            format!("{} ({} alloc)", distributed.cycles, dist_alloc),
            format!("{:.1} us", dist_us),
            format!("{:.0}x", monitor.scheduling_us / dist_us.max(1e-9)),
        ]);
        // Sanity: both architectures serve the same workload volume.
        assert!(
            (mon_alloc as i64 - dist_alloc as i64).abs() <= (n as i64),
            "architectures diverged: {mon_alloc} vs {dist_alloc}"
        );
    }
    emit_table(
        "overhead",
        &[
            "network",
            "monitor cycles",
            "monitor time",
            "token cycles",
            "token time",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nshape: over a full workload the monitor spends milliseconds scheduling\n\
         where the token network spends microseconds — Section IV's conclusion."
    );
}
