//! TAB2 — Table II: summary of optimal resource scheduling schemes,
//! generated from the implemented scheduler registry.

fn main() {
    print!("{}", rsin_core::table2::render());
}
