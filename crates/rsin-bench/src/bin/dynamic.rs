//! DYNAMIC — the Section II system model under load.
//!
//! A discrete-event simulation of the full resource-sharing system (Poisson
//! arrivals, one task per processor at a time, circuit released after
//! transmission, resource busy until completion), sweeping the offered load
//! and comparing the optimal scheduler against greedy routing on resource
//! utilization and response time (mean and tail p99).
//!
//! Usage: `dynamic [--telemetry <path>] [--json <path>] [--replicas <n>]
//! [--threads <n>] [--heavy] [horizon] [threads]`
//!
//! With `--heavy`, a second table runs the heavy-traffic regime: the
//! utilization-targeting ρ knob sweeps {0.9, 0.95, 0.99, 1.05} with bursty
//! batch-4 arrivals and a 64-deep bounded per-processor queue, reporting
//! queue growth (horizon-end backlog), shed rate, and response-time p99 per
//! scheduler. Heavy rows ride the same replication machinery, so they are
//! bit-identical for any `--threads` value and join the `--json` report.
//!
//! Every sweep point runs `--replicas` independent `(seed, replica)`
//! replications (default 1, which reproduces the single-run sweep
//! bit-for-bit), flattened with the load axis onto one worker pool and
//! merged in replica order — so the table and the `--json` report are
//! **bit-identical for any `--threads` value**. The JSON deliberately omits
//! the thread count; the CI determinism job byte-compares the file across
//! thread counts.
//!
//! With `--telemetry <path>`, a replicated probed run (omega-8, max-flow,
//! load 0.5) re-executes after the sweep, each replica recording into its
//! own `rsin_obs::Telemetry` sink; the reports are merged in replica order
//! and written as JSON to the given path.

use rsin_bench::{emit_table, network_by_name};
use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler};
use rsin_sim::replicate::{run_replicated_probed, run_replicated_sweep, ReplicatedStats};
use rsin_sim::system::DynamicConfig;

const LOADS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Heavy-traffic utilization targets: near-critical to past saturation.
const RHOS: [f64; 4] = [0.9, 0.95, 0.99, 1.05];

/// Pop a bare `--flag` out of `args`; returns whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Pop `--flag value` out of `args`; returns the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn json_row(load: f64, scheduler: &str, s: &ReplicatedStats) -> String {
    format!(
        "    {{\"arrival_rate\": {load}, \"scheduler\": \"{scheduler}\", \
         \"utilization\": {}, \"utilization_ci95\": {}, \
         \"response\": {}, \"response_ci95\": {}, \"response_p99\": {}, \
         \"mean_queue\": {}, \"mean_blocking\": {}, \
         \"completed\": {}, \"cycles\": {}}}",
        s.utilization.mean,
        s.utilization.ci95,
        s.response.mean,
        s.response.ci95,
        s.response.p99,
        s.mean_queue.mean,
        s.mean_blocking.mean,
        s.completed,
        s.cycles,
    )
}

/// Fraction of offered tasks dropped at a full bounded queue. The
/// denominator counts every task that reached a verdict by the horizon:
/// completed, still queued, or shed.
fn shed_rate(s: &ReplicatedStats) -> f64 {
    let offered = s.completed + s.final_queue.mean as u64 * s.replicas + s.shed_arrivals;
    if offered == 0 {
        0.0
    } else {
        s.shed_arrivals as f64 / offered as f64
    }
}

fn heavy_json_row(rho: f64, scheduler: &str, s: &ReplicatedStats) -> String {
    format!(
        "    {{\"rho\": {rho}, \"scheduler\": \"{scheduler}\", \
         \"utilization\": {}, \"response_p99\": {}, \
         \"mean_queue\": {}, \"final_queue\": {}, \
         \"shed_arrivals\": {}, \"shed_rate\": {}, \"completed\": {}}}",
        s.utilization.mean,
        s.response.p99,
        s.mean_queue.mean,
        s.final_queue.mean,
        s.shed_arrivals,
        shed_rate(s),
        s.completed,
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = take_flag(&mut args, "--telemetry");
    let json_path = take_flag(&mut args, "--json");
    let heavy = take_switch(&mut args, "--heavy");
    let replicas: usize = take_flag(&mut args, "--replicas")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let threads_flag: Option<usize> =
        take_flag(&mut args, "--threads").and_then(|v| v.parse().ok());
    let horizon = args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(3000.0f64);
    let threads = threads_flag
        .or_else(|| args.get(1).and_then(|a| a.parse().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let net = network_by_name("omega-8").unwrap();
    let optimal = MaxFlowScheduler::default();
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(5));
    let schedulers: Vec<&dyn Scheduler> = vec![&optimal, &greedy];
    println!(
        "DYNAMIC — omega-8, horizon {horizon}, mean service 1.0, mean transmission 0.2, \
         {replicas} replica(s), {threads} worker thread(s)\n"
    );
    let configs: Vec<DynamicConfig> = LOADS
        .iter()
        .map(|&load| DynamicConfig {
            arrival_rate: load,
            mean_transmission: 0.2,
            mean_service: 1.0,
            sim_time: horizon,
            warmup: horizon * 0.1,
            seed: 42,
            ..DynamicConfig::default()
        })
        .collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    // The (load × replica) grid runs in parallel per scheduler; row order
    // (and every statistic) is independent of the thread count because each
    // replica is a pure function of (seed, replica) and the merges run
    // sequentially in replica order.
    for s in &schedulers {
        let sweep = run_replicated_sweep(&net, *s, &configs, replicas, threads);
        for (load, stats) in LOADS.iter().zip(&sweep) {
            rows.push(vec![
                format!("{load:.1}"),
                s.name().to_string(),
                format!("{:.3}", stats.utilization.mean),
                format!("{:.3}", stats.response.mean),
                format!("{:.3}", stats.response.ci95),
                format!("{:.3}", stats.response.p99),
                format!("{:.2}", stats.mean_queue.mean),
                format!("{:.3}", stats.mean_blocking.mean),
                stats.completed.to_string(),
            ]);
            json_rows.push(json_row(*load, s.name(), stats));
        }
    }
    emit_table(
        "dynamic",
        &[
            "arrival rate",
            "scheduler",
            "utilization",
            "response",
            "resp ci95",
            "resp p99",
            "queue",
            "cycle blocking",
            "completed",
        ],
        &rows,
    );
    let mut heavy_json_rows = Vec::new();
    if heavy {
        // Heavy-traffic regime: utilization-targeted ρ from near-critical
        // to past saturation, bursty batch-4 arrivals, 64-deep bounded
        // queues. Same replication machinery as the main sweep, so every
        // number is thread-count independent.
        let heavy_configs: Vec<DynamicConfig> = RHOS
            .iter()
            .map(|&rho| DynamicConfig {
                rho,
                batch_size: 4,
                queue_capacity: 64,
                mean_transmission: 0.2,
                mean_service: 1.0,
                sim_time: horizon,
                warmup: horizon * 0.1,
                seed: 42,
                ..DynamicConfig::default()
            })
            .collect();
        let mut heavy_rows = Vec::new();
        for s in &schedulers {
            let sweep = run_replicated_sweep(&net, *s, &heavy_configs, replicas, threads);
            for (rho, stats) in RHOS.iter().zip(&sweep) {
                heavy_rows.push(vec![
                    format!("{rho:.2}"),
                    s.name().to_string(),
                    format!("{:.3}", stats.utilization.mean),
                    format!("{:.3}", stats.response.p99),
                    format!("{:.2}", stats.mean_queue.mean),
                    format!("{:.1}", stats.final_queue.mean),
                    stats.shed_arrivals.to_string(),
                    format!("{:.4}", shed_rate(stats)),
                    stats.completed.to_string(),
                ]);
                heavy_json_rows.push(heavy_json_row(*rho, s.name(), stats));
            }
        }
        println!();
        emit_table(
            "dynamic-heavy",
            &[
                "rho",
                "scheduler",
                "utilization",
                "resp p99",
                "queue",
                "final queue",
                "shed",
                "shed rate",
                "completed",
            ],
            &heavy_rows,
        );
    }
    if let Some(jpath) = json_path {
        // No thread count in here: the report must be byte-identical
        // however many workers produced it (the CI determinism job diffs
        // it across --threads values).
        let heavy_block = if heavy_json_rows.is_empty() {
            String::new()
        } else {
            format!(
                ",\n  \"heavy_rows\": [\n{}\n  ]",
                heavy_json_rows.join(",\n")
            )
        };
        let json = format!(
            "{{\n  \"source\": \"dynamic\",\n  \"network\": \"omega-8\",\n  \
             \"horizon\": {horizon},\n  \"replicas\": {replicas},\n  \"seed\": 42,\n  \
             \"rows\": [\n{}\n  ]{heavy_block}\n}}\n",
            json_rows.join(",\n"),
        );
        if let Err(e) = std::fs::write(&jpath, &json) {
            eprintln!("warning: could not write {jpath}: {e}");
        } else {
            println!("\nreport written to {jpath}");
        }
    }
    if let Some(tpath) = telemetry_path {
        // A replicated probed run at the middle of the sweep; probes only
        // observe, so the table above is unaffected, and per-replica sinks
        // merged in replica order keep counters/events thread-count
        // independent (span latencies stay wall-clock).
        let cfg = DynamicConfig {
            arrival_rate: 0.5,
            mean_transmission: 0.2,
            mean_service: 1.0,
            sim_time: horizon,
            warmup: horizon * 0.1,
            seed: 42,
            ..DynamicConfig::default()
        };
        let (_, report) = run_replicated_probed(&net, &optimal, &cfg, replicas, threads);
        let json = report.to_json("dynamic");
        if let Err(e) = std::fs::write(&tpath, &json) {
            eprintln!("warning: could not write {tpath}: {e}");
        } else {
            println!(
                "\ntelemetry written to {tpath} (omega-8 / max-flow / load 0.5, \
                 {replicas} replica(s))"
            );
        }
    }
    println!(
        "\nshape: utilization rises with load toward saturation; the optimal \
         scheduler sustains it with equal or lower response time than greedy."
    );
}
