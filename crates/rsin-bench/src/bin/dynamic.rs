//! DYNAMIC — the Section II system model under load.
//!
//! A discrete-event simulation of the full resource-sharing system (Poisson
//! arrivals, one task per processor at a time, circuit released after
//! transmission, resource busy until completion), sweeping the offered load
//! and comparing the optimal scheduler against greedy routing on resource
//! utilization and response time (mean and tail p99).
//!
//! Usage: `dynamic [--telemetry <path>] [horizon] [threads]`
//!
//! With `--telemetry <path>`, one bounded probed run (omega-8, max-flow,
//! load 0.5) re-executes after the sweep under a live `rsin_obs::Telemetry`
//! sink and its JSON snapshot is written to the given path.

use rsin_bench::{emit_table, network_by_name};
use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler};
use rsin_obs::Telemetry;
use rsin_sim::system::{run_sweep, DynamicConfig, SystemSim};

const LOADS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut telemetry_path = None;
    if let Some(i) = args.iter().position(|a| a == "--telemetry") {
        if i + 1 >= args.len() {
            eprintln!("error: --telemetry needs a path");
            std::process::exit(2);
        }
        telemetry_path = Some(args.remove(i + 1));
        args.remove(i);
    }
    let horizon = args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(3000.0f64);
    let threads = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let net = network_by_name("omega-8").unwrap();
    let optimal = MaxFlowScheduler::default();
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(5));
    let schedulers: Vec<&dyn Scheduler> = vec![&optimal, &greedy];
    println!(
        "DYNAMIC — omega-8, horizon {horizon}, mean service 1.0, mean transmission 0.2, \
         {threads} worker thread(s)\n"
    );
    let configs: Vec<DynamicConfig> = LOADS
        .iter()
        .map(|&load| DynamicConfig {
            arrival_rate: load,
            mean_transmission: 0.2,
            mean_service: 1.0,
            sim_time: horizon,
            warmup: horizon * 0.1,
            seed: 42,
            types: 1,
        })
        .collect();
    let mut rows = Vec::new();
    // The whole load sweep runs in parallel per scheduler; row order (and
    // every statistic) is independent of the thread count.
    for s in &schedulers {
        let sweep = run_sweep(&net, *s, &configs, threads);
        for (load, stats) in LOADS.iter().zip(&sweep) {
            rows.push(vec![
                format!("{load:.1}"),
                s.name().to_string(),
                format!("{:.3}", stats.utilization),
                format!("{:.3}", stats.mean_response),
                format!("{:.3}", stats.response_p99),
                format!("{:.2}", stats.mean_queue),
                format!("{:.3}", stats.mean_blocking),
                stats.completed.to_string(),
            ]);
        }
    }
    emit_table(
        "dynamic",
        &[
            "arrival rate",
            "scheduler",
            "utilization",
            "response",
            "resp p99",
            "queue",
            "cycle blocking",
            "completed",
        ],
        &rows,
    );
    if let Some(tpath) = telemetry_path {
        // One bounded probed run at the middle of the sweep; probes only
        // observe, so the table above is unaffected.
        let telemetry = Telemetry::new();
        let cfg = DynamicConfig {
            arrival_rate: 0.5,
            mean_transmission: 0.2,
            mean_service: 1.0,
            sim_time: horizon,
            warmup: horizon * 0.1,
            seed: 42,
            types: 1,
        };
        let _ = SystemSim::new(&net, cfg).run_probed(&optimal, &telemetry);
        let json = telemetry.report().to_json("dynamic");
        if let Err(e) = std::fs::write(&tpath, &json) {
            eprintln!("warning: could not write {tpath}: {e}");
        } else {
            println!("\ntelemetry written to {tpath} (omega-8 / max-flow / load 0.5)");
        }
    }
    println!(
        "\nshape: utilization rises with load toward saturation; the optimal \
         scheduler sustains it with equal or lower response time than greedy."
    );
}
