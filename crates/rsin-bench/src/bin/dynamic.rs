//! DYNAMIC — the Section II system model under load.
//!
//! A discrete-event simulation of the full resource-sharing system (Poisson
//! arrivals, one task per processor at a time, circuit released after
//! transmission, resource busy until completion), sweeping the offered load
//! and comparing the optimal scheduler against greedy routing on resource
//! utilization and response time (mean and tail p99).
//!
//! Usage: `dynamic [--telemetry <path>] [--json <path>] [--replicas <n>]
//! [--threads <n>] [horizon] [threads]`
//!
//! Every sweep point runs `--replicas` independent `(seed, replica)`
//! replications (default 1, which reproduces the single-run sweep
//! bit-for-bit), flattened with the load axis onto one worker pool and
//! merged in replica order — so the table and the `--json` report are
//! **bit-identical for any `--threads` value**. The JSON deliberately omits
//! the thread count; the CI determinism job byte-compares the file across
//! thread counts.
//!
//! With `--telemetry <path>`, a replicated probed run (omega-8, max-flow,
//! load 0.5) re-executes after the sweep, each replica recording into its
//! own `rsin_obs::Telemetry` sink; the reports are merged in replica order
//! and written as JSON to the given path.

use rsin_bench::{emit_table, network_by_name};
use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler};
use rsin_sim::replicate::{run_replicated_probed, run_replicated_sweep, ReplicatedStats};
use rsin_sim::system::DynamicConfig;

const LOADS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Pop `--flag value` out of `args`; returns the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn json_row(load: f64, scheduler: &str, s: &ReplicatedStats) -> String {
    format!(
        "    {{\"arrival_rate\": {load}, \"scheduler\": \"{scheduler}\", \
         \"utilization\": {}, \"utilization_ci95\": {}, \
         \"response\": {}, \"response_ci95\": {}, \"response_p99\": {}, \
         \"mean_queue\": {}, \"mean_blocking\": {}, \
         \"completed\": {}, \"cycles\": {}}}",
        s.utilization.mean,
        s.utilization.ci95,
        s.response.mean,
        s.response.ci95,
        s.response.p99,
        s.mean_queue.mean,
        s.mean_blocking.mean,
        s.completed,
        s.cycles,
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = take_flag(&mut args, "--telemetry");
    let json_path = take_flag(&mut args, "--json");
    let replicas: usize = take_flag(&mut args, "--replicas")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let threads_flag: Option<usize> =
        take_flag(&mut args, "--threads").and_then(|v| v.parse().ok());
    let horizon = args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(3000.0f64);
    let threads = threads_flag
        .or_else(|| args.get(1).and_then(|a| a.parse().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let net = network_by_name("omega-8").unwrap();
    let optimal = MaxFlowScheduler::default();
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(5));
    let schedulers: Vec<&dyn Scheduler> = vec![&optimal, &greedy];
    println!(
        "DYNAMIC — omega-8, horizon {horizon}, mean service 1.0, mean transmission 0.2, \
         {replicas} replica(s), {threads} worker thread(s)\n"
    );
    let configs: Vec<DynamicConfig> = LOADS
        .iter()
        .map(|&load| DynamicConfig {
            arrival_rate: load,
            mean_transmission: 0.2,
            mean_service: 1.0,
            sim_time: horizon,
            warmup: horizon * 0.1,
            seed: 42,
            types: 1,
            priority_levels: 1,
        })
        .collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    // The (load × replica) grid runs in parallel per scheduler; row order
    // (and every statistic) is independent of the thread count because each
    // replica is a pure function of (seed, replica) and the merges run
    // sequentially in replica order.
    for s in &schedulers {
        let sweep = run_replicated_sweep(&net, *s, &configs, replicas, threads);
        for (load, stats) in LOADS.iter().zip(&sweep) {
            rows.push(vec![
                format!("{load:.1}"),
                s.name().to_string(),
                format!("{:.3}", stats.utilization.mean),
                format!("{:.3}", stats.response.mean),
                format!("{:.3}", stats.response.ci95),
                format!("{:.3}", stats.response.p99),
                format!("{:.2}", stats.mean_queue.mean),
                format!("{:.3}", stats.mean_blocking.mean),
                stats.completed.to_string(),
            ]);
            json_rows.push(json_row(*load, s.name(), stats));
        }
    }
    emit_table(
        "dynamic",
        &[
            "arrival rate",
            "scheduler",
            "utilization",
            "response",
            "resp ci95",
            "resp p99",
            "queue",
            "cycle blocking",
            "completed",
        ],
        &rows,
    );
    if let Some(jpath) = json_path {
        // No thread count in here: the report must be byte-identical
        // however many workers produced it (the CI determinism job diffs
        // it across --threads values).
        let json = format!(
            "{{\n  \"source\": \"dynamic\",\n  \"network\": \"omega-8\",\n  \
             \"horizon\": {horizon},\n  \"replicas\": {replicas},\n  \"seed\": 42,\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n"),
        );
        if let Err(e) = std::fs::write(&jpath, &json) {
            eprintln!("warning: could not write {jpath}: {e}");
        } else {
            println!("\nreport written to {jpath}");
        }
    }
    if let Some(tpath) = telemetry_path {
        // A replicated probed run at the middle of the sweep; probes only
        // observe, so the table above is unaffected, and per-replica sinks
        // merged in replica order keep counters/events thread-count
        // independent (span latencies stay wall-clock).
        let cfg = DynamicConfig {
            arrival_rate: 0.5,
            mean_transmission: 0.2,
            mean_service: 1.0,
            sim_time: horizon,
            warmup: horizon * 0.1,
            seed: 42,
            types: 1,
            priority_levels: 1,
        };
        let (_, report) = run_replicated_probed(&net, &optimal, &cfg, replicas, threads);
        let json = report.to_json("dynamic");
        if let Err(e) = std::fs::write(&tpath, &json) {
            eprintln!("warning: could not write {tpath}: {e}");
        } else {
            println!(
                "\ntelemetry written to {tpath} (omega-8 / max-flow / load 0.5, \
                 {replicas} replica(s))"
            );
        }
    }
    println!(
        "\nshape: utilization rises with load toward saturation; the optimal \
         scheduler sustains it with equal or lower response time than greedy."
    );
}
