//! FIG10 — the status-bus state machine trace (Fig. 10 + Table I).
//!
//! Runs one distributed scheduling cycle on the Fig. 2 instance and prints
//! the 7-bit wire-OR bus vector at every phase transition, matching the
//! paper's walk-through: (111000x) request-token propagation → (111001x)
//! an RS sets E6 → (110100x) resource-token propagation → (110110x) path
//! registration → next iteration / allocation.

use rsin_core::model::ScheduleProblem;
use rsin_distrib::status::Event;
use rsin_distrib::TokenEngine;
use rsin_topology::builders::omega;
use rsin_topology::CircuitState;

fn main() {
    println!("Table I — status bus bit assignment:");
    for e in Event::ALL {
        println!(
            "  bit {}: {:?} (driven by {})",
            e.bit(),
            e,
            e.associated_processes()
        );
    }

    let net = omega(8).unwrap();
    let mut cs = CircuitState::new(&net);
    cs.connect(1, 5).unwrap();
    cs.connect(3, 3).unwrap();
    let problem = ScheduleProblem::homogeneous(&cs, &[0, 2, 4, 6, 7], &[0, 2, 4, 6, 7]);
    let report = TokenEngine::run(&problem);

    println!("\nFIG10 trace on the Fig. 2 instance ({}):", net.summary());
    println!("{:>6}  {:<9}  phase", "clock", "bus");
    for t in &report.trace {
        println!("{:>6}  {:<9}  {}", t.clock, t.vector, t.phase);
    }
    println!(
        "\ncycle complete: {} allocated, {} blocked, {} iterations, {} clock periods",
        report.outcome.assignments.len(),
        report.outcome.blocked.len(),
        report.iterations,
        report.clocks
    );
    let vectors: Vec<&str> = report.trace.iter().map(|t| t.vector.as_str()).collect();
    for expected in ["111000x", "111001x", "110100x", "110110x"] {
        assert!(
            vectors.contains(&expected),
            "missing paper vector {expected}"
        );
    }
    println!("all four paper state vectors observed. reproduced.");
}
