//! Shared helpers for the experiment binaries (one binary per paper
//! figure/claim; see EXPERIMENTS.md at the workspace root for the index).

use rsin_topology::{builders, Network};
use std::io::Write;

/// Print a result table and, when `RSIN_CSV_DIR` is set, also write it as
/// `<dir>/<name>.csv` so experiment outputs can be archived/diffed.
pub fn emit_table(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    print_table(headers, rows);
    if let Ok(dir) = std::env::var("RSIN_CSV_DIR") {
        if let Err(e) = write_csv(&dir, name, headers, rows) {
            eprintln!("warning: could not write {name}.csv: {e}");
        }
    }
}

fn write_csv(dir: &str, name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = std::path::Path::new(dir).join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    let quote = |s: &str| {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        if row.iter().all(|c| c.is_empty()) {
            continue; // visual spacer rows
        }
        writeln!(
            f,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    f.flush()
}

/// Fixed-width plain-text table printer for experiment output.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Build a network by registry name (used by sweep experiments):
/// `omega-8`, `cube-8`, `baseline-8`, `benes-8`, `flip-8`, `crossbar-8`,
/// `indirect-cube-8`, `gamma-8`, `omega-16`, …, plus the path-diverse
/// variants `omega-8+1` (extra-stage augmentation, `+k` extra stages) and
/// `3dp-omega-8` (three arc-disjoint planes).
pub fn network_by_name(name: &str) -> Option<Network> {
    let (kind, size) = name.rsplit_once('-')?;
    if let Some((n, extra)) = size.split_once('+') {
        // `omega-8+1`: an Omega with `extra` redundant stages prepended.
        let n: usize = n.parse().ok()?;
        let extra: usize = extra.parse().ok()?;
        return match kind {
            "omega" => builders::omega_extra_stage(n, extra).ok(),
            _ => None,
        };
    }
    let n: usize = size.parse().ok()?;
    match kind {
        "omega" => builders::omega(n).ok(),
        "3dp-omega" => builders::omega_3dp(n).ok(),
        "cube" => builders::generalized_cube(n).ok(),
        "indirect-cube" => builders::indirect_cube(n).ok(),
        "baseline" => builders::baseline(n).ok(),
        "benes" => builders::benes(n).ok(),
        "flip" => builders::flip(n).ok(),
        "crossbar" => builders::crossbar(n, n).ok(),
        "gamma" => builders::gamma(n).ok(),
        _ => None,
    }
}

/// The standard set of 8×8 topologies the experiments sweep over.
pub fn standard_networks() -> Vec<Network> {
    ["omega-8", "cube-8", "baseline-8", "benes-8", "crossbar-8"]
        .iter()
        .map(|n| network_by_name(n).expect("registry"))
        .collect()
}

/// Format a mean ± CI pair as a percentage.
pub fn pct(mean: f64, ci: f64) -> String {
    format!("{:5.2}% ±{:.2}", 100.0 * mean, 100.0 * ci)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_known_names() {
        assert!(network_by_name("omega-8").is_some());
        assert!(network_by_name("cube-16").is_some());
        assert!(network_by_name("benes-4").is_some());
        assert!(network_by_name("nonsense-8").is_none());
        assert!(network_by_name("omega").is_none());
    }

    #[test]
    fn registry_resolves_path_diverse_variants() {
        let extra = network_by_name("omega-8+1").unwrap();
        assert_eq!(extra.num_stages(), 4);
        let plain = network_by_name("omega-8+0").unwrap();
        assert_eq!(plain.num_stages(), 3);
        let tdp = network_by_name("3dp-omega-8").unwrap();
        assert_eq!(tdp.num_processors(), 8);
        assert!(network_by_name("benes-8+1").is_none());
        assert!(network_by_name("omega-8+x").is_none());
        assert!(network_by_name("3dp-omega-7").is_none());
    }

    #[test]
    fn standard_networks_are_five() {
        let nets = standard_networks();
        assert_eq!(nets.len(), 5);
        assert!(nets.iter().all(|n| n.num_processors() == 8));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0213, 0.001), " 2.13% ±0.10");
    }
}
