//! Bench: multicommodity LP (simplex) vs sequential per-type max-flow
//! fallback on heterogeneous instances (Section III-D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_core::model::{FreeResource, ScheduleProblem, ScheduleRequest};
use rsin_core::scheduler::{MultiCommodityScheduler, Scheduler};
use rsin_core::transform::hetero::transform_max;
use rsin_flow::multicommodity;
use rsin_sim::workload::{random_snapshot, random_types, trial_rng};
use rsin_topology::builders::omega;
use std::hint::black_box;

fn typed_problem<'a, 'n>(
    snap: &'a rsin_sim::workload::Snapshot<'n>,
    types: usize,
    seed: u64,
) -> ScheduleProblem<'a, 'n> {
    let mut rng = trial_rng(seed, 1);
    let req = random_types(&snap.requesting, types, &mut rng);
    let res = random_types(&snap.free, types, &mut rng);
    ScheduleProblem {
        circuits: &snap.circuits,
        requests: req
            .iter()
            .map(|&(p, ty)| ScheduleRequest {
                processor: p,
                priority: 1,
                resource_type: ty,
            })
            .collect(),
        free: res
            .iter()
            .map(|&(r, ty)| FreeResource {
                resource: r,
                preference: 1,
                resource_type: ty,
            })
            .collect(),
    }
}

fn bench_multicommodity(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicommodity");
    group.sample_size(20);
    for (n, types) in [(8usize, 2usize), (8, 3), (16, 2)] {
        let net = omega(n).unwrap();
        let mut rng = trial_rng(3, n as u64);
        let snap = random_snapshot(&net, n / 2, n / 2, 0, &mut rng);
        let problem = typed_problem(&snap, types, 40 + n as u64);
        group.bench_with_input(
            BenchmarkId::new("simplex_lp", format!("{n}x{types}")),
            &problem,
            |b, p| {
                let t = transform_max(p);
                b.iter(|| {
                    black_box(
                        multicommodity::max_flow(&t.flow, &t.commodities)
                            .unwrap()
                            .objective,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_scheduler", format!("{n}x{types}")),
            &problem,
            |b, p| {
                let s = MultiCommodityScheduler::default();
                b.iter(|| black_box(s.schedule(p).allocated()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multicommodity);
criterion_main!(benches);
