//! Bench: the simulation hot path — per-cycle transformation rebuild vs
//! superset reset, and single- vs multi-threaded Monte-Carlo batches.
//!
//! Two claims are measured on an Omega-16 blocking sweep:
//!
//! 1. `reset_per_trial` (a `ScheduleScratch` retuned per snapshot) beats
//!    `rebuild_per_trial` (a fresh transformation graph per snapshot) for
//!    both the max-flow and the min-cost scheduler;
//! 2. `run_blocking_threads` with N workers beats 1 worker on the same
//!    batch while producing bit-identical statistics (asserted here, not
//!    just in the unit tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MaxFlowScheduler, MinCostScheduler, ScheduleScratch, Scheduler};
use rsin_sim::blocking::{run_blocking_threads, BlockingConfig};
use rsin_sim::workload::{random_snapshot, trial_rng};
use rsin_topology::builders::omega;
use rsin_topology::Network;
use std::hint::black_box;

const TRIALS: u64 = 64;

/// Sum of allocations over a fixed trial batch, scheduling each snapshot
/// through `schedule` (rebuild) or `schedule_reusing` (reset).
fn batch(net: &Network, scheduler: &dyn Scheduler, scratch: Option<&mut ScheduleScratch>) -> usize {
    let mut total = 0;
    let mut scratch = scratch;
    for trial in 0..TRIALS {
        let mut rng = trial_rng(41, trial);
        let snap = random_snapshot(net, 8, 8, 2, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        total += match scratch.as_deref_mut() {
            Some(s) => scheduler.schedule_reusing(&problem, s).allocated(),
            None => scheduler.schedule(&problem).allocated(),
        };
    }
    total
}

fn bench_rebuild_vs_reset(c: &mut Criterion) {
    let net = omega(16).unwrap();
    let mut group = c.benchmark_group("transform_hot_path_omega16");
    let schedulers: Vec<(&str, &dyn Scheduler)> = vec![
        (
            "max_flow",
            &MaxFlowScheduler {
                algorithm: rsin_flow::max_flow::Algorithm::Dinic,
            },
        ),
        (
            "min_cost",
            &MinCostScheduler {
                algorithm: rsin_flow::min_cost::Algorithm::SuccessiveShortestPaths,
            },
        ),
    ];
    for (name, s) in &schedulers {
        group.bench_with_input(BenchmarkId::new("rebuild_per_trial", name), s, |b, s| {
            b.iter(|| black_box(batch(&net, *s, None)))
        });
        group.bench_with_input(BenchmarkId::new("reset_per_trial", name), s, |b, s| {
            let mut scratch = ScheduleScratch::new();
            b.iter(|| black_box(batch(&net, *s, Some(&mut scratch))))
        });
    }
    group.finish();
}

fn bench_threaded_blocking(c: &mut Criterion) {
    let net = omega(16).unwrap();
    let cfg = BlockingConfig {
        trials: 1024,
        requests: 8,
        resources: 8,
        occupied_circuits: 2,
        seed: 41,
    };
    let scheduler = MaxFlowScheduler::default();
    // The determinism contract, checked on the bench workload itself.
    let one = run_blocking_threads(&net, &scheduler, &cfg, 1);
    let many = run_blocking_threads(&net, &scheduler, &cfg, 4);
    assert_eq!(one.blocking.mean.to_bits(), many.blocking.mean.to_bits());
    assert_eq!(one.allocated.mean.to_bits(), many.allocated.mean.to_bits());

    // Bench 1 worker against the host's actual parallelism: scaling past
    // the physical core count only measures spawn overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize];
    for t in [2, 4, 8] {
        if t <= cores {
            counts.push(t);
        }
    }
    let mut group = c.benchmark_group("blocking_batch_omega16");
    for threads in counts {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(
                    run_blocking_threads(&net, &scheduler, &cfg, t)
                        .blocking
                        .mean,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rebuild_vs_reset, bench_threaded_blocking);
criterion_main!(benches);
