//! Bench: the token-propagation engine (simulation throughput, plus the
//! clock-period work measure reported in its results).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_core::model::ScheduleProblem;
use rsin_distrib::TokenEngine;
use rsin_sim::workload::{random_snapshot, trial_rng};
use rsin_topology::builders::{generalized_cube, omega};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_engine");
    for n in [8usize, 16, 32] {
        for net in [omega(n).unwrap(), generalized_cube(n).unwrap()] {
            let mut rng = trial_rng(5, n as u64);
            let snap = random_snapshot(&net, n / 2, n / 2, n / 8, &mut rng);
            let problem =
                ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
            group.bench_with_input(
                BenchmarkId::new(net.name().to_string(), n),
                &problem,
                |b, p| b.iter(|| black_box(TokenEngine::run(p).clocks)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
