//! Bench: complete scheduling cycles per scheduler (the monitor
//! architecture's end-to-end cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{
    GreedyScheduler, MatchingScheduler, MaxFlowScheduler, MinCostScheduler, RequestOrder, Scheduler,
};
use rsin_sim::workload::{random_snapshot, trial_rng};
use rsin_topology::builders::crossbar;
use rsin_topology::builders::omega;
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_cycle");
    let maxflow = MaxFlowScheduler::default();
    let mincost = MinCostScheduler::default();
    let greedy = GreedyScheduler::new(RequestOrder::Index);
    let schedulers: Vec<(&str, &dyn Scheduler)> = vec![
        ("max_flow", &maxflow),
        ("min_cost", &mincost),
        ("greedy", &greedy),
    ];
    for n in [8usize, 16, 32] {
        let net = omega(n).unwrap();
        let mut rng = trial_rng(4, n as u64);
        let snap = random_snapshot(&net, n / 2, n / 2, n / 8, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        for (name, s) in &schedulers {
            group.bench_with_input(BenchmarkId::new(*name, n), &problem, |b, p| {
                b.iter(|| black_box(s.schedule(p).allocated()))
            });
        }
    }
    group.finish();
}

/// Crossbar fast path: Hopcroft-Karp matching vs the generic flow
/// reduction on single-stage networks.
fn bench_crossbar_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_fast_path");
    for n in [8usize, 16, 32] {
        let net = crossbar(n, n).unwrap();
        let mut rng = trial_rng(14, n as u64);
        let snap = random_snapshot(&net, n / 2, n / 2, 2, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &problem, |b, p| {
            b.iter(|| black_box(MatchingScheduler.schedule(p).allocated()))
        });
        group.bench_with_input(BenchmarkId::new("max_flow", n), &problem, |b, p| {
            b.iter(|| black_box(MaxFlowScheduler::default().schedule(p).allocated()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_crossbar_fast_path);
criterion_main!(benches);
