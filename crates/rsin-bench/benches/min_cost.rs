//! Ablation bench: successive shortest paths vs the paper's out-of-kilter
//! method on Transformation-2 networks (priority scheduling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_core::model::ScheduleProblem;
use rsin_core::transform::priority;
use rsin_flow::min_cost::{solve, Algorithm};
use rsin_sim::workload::{random_levels, random_snapshot, trial_rng};
use rsin_topology::builders::omega;
use std::hint::black_box;

fn bench_min_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_cost_transformation2");
    for n in [8usize, 16, 32] {
        let net = omega(n).unwrap();
        let mut rng = trial_rng(2, n as u64);
        let snap = random_snapshot(&net, n / 2, n / 2, 0, &mut rng);
        let req = random_levels(&snap.requesting, 10, &mut rng);
        let free = random_levels(&snap.free, 10, &mut rng);
        let problem = ScheduleProblem::with_priorities(&snap.circuits, &req, &free);
        let (transformed, f0) = priority::transform(&problem);
        for algo in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), n),
                &transformed,
                |b, t| {
                    b.iter(|| {
                        let mut g = t.flow.clone();
                        black_box(solve(&mut g, t.source, t.sink, f0, algo).cost)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_min_cost);
criterion_main!(benches);
