//! Bench: topology construction and free-path search (the heuristic
//! scheduler's primitive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_topology::builders;
use rsin_topology::CircuitState;
use std::hint::black_box;

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("omega", n), &n, |b, &n| {
            b.iter(|| black_box(builders::omega(n).unwrap().num_links()))
        });
        group.bench_with_input(BenchmarkId::new("benes", n), &n, |b, &n| {
            b.iter(|| black_box(builders::benes(n).unwrap().num_links()))
        });
        group.bench_with_input(BenchmarkId::new("gamma", n), &n, |b, &n| {
            b.iter(|| black_box(builders::gamma(n).unwrap().num_links()))
        });
    }
    group.finish();
}

fn bench_find_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_path");
    for n in [8usize, 32, 128] {
        let net = builders::omega(n).unwrap();
        let cs = CircuitState::new(&net);
        group.bench_with_input(BenchmarkId::new("omega_bfs", n), &cs, |b, cs| {
            b.iter(|| {
                let mut found = 0;
                for p in 0..4 {
                    if cs.find_path(p, n - 1 - p).is_some() {
                        found += 1;
                    }
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builders, bench_find_path);
criterion_main!(benches);
