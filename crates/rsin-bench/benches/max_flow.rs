//! Ablation bench: the three maximum-flow algorithms on MRSIN-shaped
//! unit-capacity networks (COMPLEX experiment — Dinic's `O(|V|^{2/3}|E|)`
//! unit-network advantage vs Edmonds–Karp and DFS Ford–Fulkerson).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_core::model::ScheduleProblem;
use rsin_core::transform::homogeneous;
use rsin_flow::max_flow::{solve, Algorithm};
use rsin_sim::workload::{random_snapshot, trial_rng};
use rsin_topology::builders::omega;
use std::hint::black_box;

fn bench_max_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_flow_mrsin");
    for n in [8usize, 16, 32, 64] {
        let net = omega(n).unwrap();
        let mut rng = trial_rng(1, n as u64);
        let snap = random_snapshot(&net, n / 2, n / 2, n / 8, &mut rng);
        let problem = ScheduleProblem::homogeneous(&snap.circuits, &snap.requesting, &snap.free);
        let transformed = homogeneous::transform(&problem);
        for algo in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), n),
                &transformed,
                |b, t| {
                    b.iter(|| {
                        let mut g = t.flow.clone();
                        black_box(solve(&mut g, t.source, t.sink, algo).value)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_max_flow);
criterion_main!(benches);
