//! Bench: the from-scratch simplex solver on assignment-problem LPs
//! (the structure multicommodity scheduling produces), checking the
//! paper's "empirically linear" claim qualitatively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsin_lp::{Cmp, Method, Problem, Sense};
use std::hint::black_box;

fn assignment_lp(k: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let mut vars = Vec::with_capacity(k * k);
    for i in 0..k {
        for j in 0..k {
            // Deterministic pseudo-random costs.
            let cost = ((i * 31 + j * 17) % 13) as f64;
            vars.push(p.add_var(format!("x{i}_{j}"), 0.0, 1.0, cost));
        }
    }
    for i in 0..k {
        let row: Vec<_> = (0..k).map(|j| (vars[i * k + j], 1.0)).collect();
        p.add_constraint(row, Cmp::Eq, 1.0);
        let col: Vec<_> = (0..k).map(|j| (vars[j * k + i], 1.0)).collect();
        p.add_constraint(col, Cmp::Eq, 1.0);
    }
    p
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_assignment");
    group.sample_size(20);
    for k in [4usize, 6, 8, 10] {
        let p = assignment_lp(k);
        group.bench_with_input(BenchmarkId::new("tableau", k), &p, |b, p| {
            b.iter(|| black_box(p.solve().unwrap().objective))
        });
        group.bench_with_input(BenchmarkId::new("revised", k), &p, |b, p| {
            b.iter(|| black_box(p.solve_with(Method::Revised).unwrap().objective))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
