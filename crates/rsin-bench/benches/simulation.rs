//! Bench: Monte-Carlo blocking batches and the dynamic discrete-event
//! simulation (the measurement machinery itself).

use criterion::{criterion_group, criterion_main, Criterion};
use rsin_core::scheduler::MaxFlowScheduler;
use rsin_sim::blocking::{run_blocking, BlockingConfig};
use rsin_sim::system::{DynamicConfig, SystemSim};
use rsin_topology::builders::omega;
use std::hint::black_box;

fn bench_blocking_batch(c: &mut Criterion) {
    let net = omega(8).unwrap();
    let cfg = BlockingConfig {
        trials: 100,
        requests: 5,
        resources: 5,
        occupied_circuits: 1,
        seed: 6,
    };
    c.bench_function("blocking_100_trials_omega8", |b| {
        b.iter(|| {
            black_box(
                run_blocking(&net, &MaxFlowScheduler::default(), &cfg)
                    .blocking
                    .mean,
            )
        })
    });
}

fn bench_dynamic(c: &mut Criterion) {
    let net = omega(8).unwrap();
    let cfg = DynamicConfig {
        arrival_rate: 0.4,
        mean_transmission: 0.1,
        mean_service: 1.0,
        sim_time: 200.0,
        warmup: 20.0,
        seed: 6,
        ..DynamicConfig::default()
    };
    c.bench_function("dynamic_200tu_omega8", |b| {
        b.iter(|| {
            black_box(
                SystemSim::new(&net, cfg)
                    .run(&MaxFlowScheduler::default())
                    .completed,
            )
        })
    });
}

criterion_group!(benches, bench_blocking_batch, bench_dynamic);
criterion_main!(benches);
