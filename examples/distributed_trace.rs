//! Watch the distributed architecture schedule: a clock-by-clock trace of
//! the token-propagation engine and its status bus (Section IV).
//!
//! ```text
//! cargo run -p rsin-examples --bin distributed_trace
//! ```

use rsin_core::model::ScheduleProblem;
use rsin_distrib::TokenEngine;
use rsin_examples::print_outcome;
use rsin_topology::builders::generalized_cube;
use rsin_topology::CircuitState;

fn main() {
    let net = generalized_cube(8).unwrap();
    println!("distributed MRSIN: {}", net.summary());
    let mut circuits = CircuitState::new(&net);
    circuits.connect(0, 2).unwrap();
    println!("pre-established: p1 -> r3\n");

    let problem = ScheduleProblem::homogeneous(&circuits, &[1, 2, 3, 4], &[0, 3, 5, 7]);
    println!("requests: p2 p3 p4 p5; free: r1 r4 r6 r8\n");
    let report = TokenEngine::run(&problem);

    println!("status-bus trace (wire-OR of all RQ/RS/NS status registers):");
    println!("{:>6}  {:<9}  phase", "clock", "bus");
    for t in &report.trace {
        println!("{:>6}  {:<9}  {}", t.clock, t.vector, t.phase);
    }
    println!(
        "\n{} iterations of (request tokens -> resource tokens -> registration),",
        report.iterations
    );
    println!(
        "{} clock periods total — gate delays, not instructions.\n",
        report.clocks
    );
    println!("final bonded circuits:");
    print_outcome(&net, &report.outcome);
    println!(
        "\nno token carried an address: each processor only learned *that* it was\n\
         bonded; the circuit itself is the binding."
    );
}
