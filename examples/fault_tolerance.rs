//! Fault tolerance: scheduling around dead switchboxes.
//!
//! The paper prefers the distributed architecture partly "for reasons such
//! as fault tolerance and modularity". Because the flow transformation only
//! mirrors *usable* links, a failed link or switchbox simply disappears
//! from the scheduling problem — the optimal mapping automatically reroutes
//! over the survivors, and the token engine keeps matching it exactly.
//!
//! ```text
//! cargo run -p rsin-examples --bin fault_tolerance
//! ```

use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MaxFlowScheduler, Scheduler};
use rsin_distrib::TokenEngine;
use rsin_examples::print_outcome;
use rsin_topology::builders::benes;
use rsin_topology::CircuitState;

fn main() {
    let net = benes(8).unwrap();
    println!("network: {} (redundant paths)\n", net.summary());
    let requesting = [0, 1, 2, 3, 4];
    let free = [3, 4, 5, 6, 7];

    let healthy = CircuitState::new(&net);
    let problem = ScheduleProblem::homogeneous(&healthy, &requesting, &free);
    let out = MaxFlowScheduler::default().schedule(&problem);
    println!("healthy network: {} of 5 allocated", out.allocated());
    print_outcome(&net, &out);

    // Kill a middle-stage switchbox outright.
    let victim = net.boxes_in_stage(2)[1];
    let mut degraded = CircuitState::new(&net);
    degraded.fail_box(victim);
    println!(
        "\nswitchbox sb{victim} (stage 2) fails — {} links dead",
        degraded.faulty_count()
    );
    let problem = ScheduleProblem::homogeneous(&degraded, &requesting, &free);
    let out = MaxFlowScheduler::default().schedule(&problem);
    let hw = TokenEngine::run(&problem);
    println!(
        "degraded network: {} of 5 allocated (rerouted)",
        out.allocated()
    );
    print_outcome(&net, &out);
    assert_eq!(
        hw.outcome.assignments.len(),
        out.allocated(),
        "token engine stays optimal on the surviving topology"
    );
    println!(
        "\ndistributed engine allocated {} as well — no element ever needed to\n\
         know *which* box died; dead links simply never carry tokens.",
        hw.outcome.assignments.len()
    );
}
