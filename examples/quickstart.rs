//! Quickstart: schedule requests through an 8×8 Omega RSIN.
//!
//! ```text
//! cargo run -p rsin-examples --bin quickstart
//! ```
//!
//! Builds the network, pre-establishes two circuits (the paper's Fig. 2
//! situation), runs the optimal flow-based scheduler, establishes the
//! circuits it found, and compares against greedy routing.

use rsin_core::mapping::apply;
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler};
use rsin_examples::print_outcome;
use rsin_topology::builders::omega;
use rsin_topology::CircuitState;

fn main() {
    // 1. A topology: 8 processors, 8 shared resources, 3 stages of 2x2 boxes.
    let net = omega(8).expect("power-of-two size");
    println!("network: {}", net.summary());

    // 2. Some circuits already carry traffic.
    let mut circuits = CircuitState::new(&net);
    circuits.connect(1, 5).unwrap(); // p2 -> r6
    circuits.connect(3, 3).unwrap(); // p4 -> r4

    // 3. A scheduling cycle: five processors request, five resources free.
    let problem = ScheduleProblem::homogeneous(&circuits, &[0, 2, 4, 6, 7], &[0, 2, 4, 6, 7]);

    // 4. The optimal request->resource mapping (Transformation 1 + max flow).
    let optimal = MaxFlowScheduler::default().schedule(&problem);
    println!(
        "\noptimal mapping ({} of 5 allocated):",
        optimal.allocated()
    );
    print_outcome(&net, &optimal);

    // 5. Compare with greedy heuristic routing.
    let greedy = GreedyScheduler::new(RequestOrder::Shuffled(3)).schedule(&problem);
    println!("\ngreedy mapping ({} of 5 allocated):", greedy.allocated());
    print_outcome(&net, &greedy);

    // 6. Commit the optimal circuits to the network.
    let assignments = optimal.assignments.clone();
    drop(problem);
    let handles = apply(&assignments, &mut circuits).expect("paths are free");
    println!(
        "\nestablished {} circuits; {} links now occupied",
        handles.len(),
        circuits.occupied_count()
    );
}
