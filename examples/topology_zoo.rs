//! Topology zoo: build any implemented network, print its survey card and
//! a Graphviz DOT rendering.
//!
//! ```text
//! cargo run -p rsin-examples --bin topology_zoo -- omega-8
//! cargo run -p rsin-examples --bin topology_zoo -- benes-8 --dot > benes.dot
//! ```

use rsin_topology::analysis::analyze;
use rsin_topology::builders;
use rsin_topology::Network;

fn by_name(name: &str) -> Option<Network> {
    let (kind, size) = name.rsplit_once('-')?;
    let n: usize = size.parse().ok()?;
    match kind {
        "omega" => builders::omega(n).ok(),
        "baseline" => builders::baseline(n).ok(),
        "cube" => builders::generalized_cube(n).ok(),
        "indirect-cube" => builders::indirect_cube(n).ok(),
        "benes" => builders::benes(n).ok(),
        "gamma" => builders::gamma(n).ok(),
        "adm" => builders::data_manipulator(n).ok(),
        "crossbar" => builders::crossbar(n, n).ok(),
        _ => None,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "omega-8".into());
    let want_dot = args.any(|a| a == "--dot");
    let Some(net) = by_name(&name) else {
        eprintln!(
            "unknown topology '{name}'; try omega-8, baseline-8, cube-8, \
             indirect-cube-8, benes-8, gamma-8, adm-8, crossbar-8"
        );
        std::process::exit(1);
    };
    if want_dot {
        print!("{}", net.to_dot());
        return;
    }
    println!("{}", net.summary());
    let r = analyze(&net, 30, 1);
    println!("  crosspoints        : {}", r.crosspoints);
    println!("  control state      : {:.0} bits", r.control_bits);
    println!(
        "  path length        : {}..{} links",
        r.path_length.0, r.path_length.1
    );
    println!(
        "  paths per pair     : {}..{}",
        r.path_multiplicity.0, r.path_multiplicity.1
    );
    println!("  perm admissibility : {:.0}%", 100.0 * r.admissibility);
    println!("  blocking class     : {:?}", r.class);
    println!("\n(run with --dot for a Graphviz rendering)");
}
