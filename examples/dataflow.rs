//! Dataflow computer: cell blocks feeding processing units through an RSIN.
//!
//! The paper's Fig. 1(b): in Dennis' dataflow architecture, active
//! instructions produced by *cell blocks* are routed to any free
//! *processing unit*; the units are the shared resource pool. Instruction
//! packets arrive in bursts whenever a block's dependencies fire, so the
//! schedule quality under bursty load is what matters — measured here with
//! the dynamic discrete-event simulation, comparing optimal flow-based
//! scheduling against greedy routing.
//!
//! ```text
//! cargo run -p rsin-examples --bin dataflow
//! ```

use rsin_core::scheduler::{GreedyScheduler, MaxFlowScheduler, RequestOrder, Scheduler};
use rsin_sim::system::{DynamicConfig, SystemSim};
use rsin_topology::builders::baseline;

fn main() {
    // 16 cell blocks feed 16 processing units through a baseline MIN.
    let net = baseline(16).unwrap();
    println!("dataflow machine: {}", net.summary());
    println!("cell blocks emit instruction packets; processing units execute them.\n");

    let schedulers: Vec<(&str, &dyn Scheduler)> = vec![
        (
            "optimal (max-flow RSIN)",
            &MaxFlowScheduler {
                algorithm: rsin_flow::Algorithm::Dinic,
            },
        ),
        (
            "greedy routing",
            &GreedyScheduler {
                order: RequestOrder::Shuffled(11),
            },
        ),
    ];

    println!(
        "{:<12} {:<26} {:>11} {:>10} {:>9} {:>10}",
        "firing rate", "scheduler", "utilization", "response", "queue", "completed"
    );
    for rate in [0.2, 0.5, 0.8] {
        for (name, s) in &schedulers {
            let cfg = DynamicConfig {
                arrival_rate: rate,
                mean_transmission: 0.05, // instruction packets are small
                mean_service: 1.0,       // execution dominates
                sim_time: 2000.0,
                warmup: 200.0,
                seed: 8,
                types: 1,
                priority_levels: 1,
                ..DynamicConfig::default()
            };
            let stats = SystemSim::new(&net, cfg).run(*s);
            println!(
                "{:<12} {:<26} {:>11.3} {:>10.3} {:>9.2} {:>10}",
                format!("{rate:.1}/block"),
                name,
                stats.utilization,
                stats.mean_response,
                stats.mean_queue,
                stats.completed
            );
        }
    }
    println!(
        "\nthe RSIN keeps the processing units busy without any cell block ever\n\
         naming a destination unit — requests enter untagged and the network\n\
         routes the maximum number of instructions to free units each cycle."
    );
}
