//! Load balancing: processors as resources.
//!
//! Section I: "In a resource sharing system with load balancing,
//! processors are considered as resources; thus, requests generated are
//! queued at the processors as well as the resources." Here an 8-node
//! cluster offloads work over an RSIN: each node both generates tasks and
//! serves them. We model the *server* side as the resource pool and sweep
//! an imbalanced arrival pattern, showing how flow-based scheduling spreads
//! the load.
//!
//! ```text
//! cargo run -p rsin-examples --bin load_balancing
//! ```

use rand::Rng;
use rsin_core::model::ScheduleProblem;
use rsin_core::scheduler::{MaxFlowScheduler, Scheduler};
use rsin_sim::workload::trial_rng;
use rsin_topology::builders::benes;
use rsin_topology::CircuitState;

fn main() {
    // A Benes network gives alternate paths, useful under heavy rebalancing.
    let net = benes(8).unwrap();
    println!("cluster interconnect: {}", net.summary());

    // Static imbalance: nodes 0-2 are overloaded (their queues hold work),
    // nodes 4-7 are idle (their CPUs are the free "resources").
    let mut rng = trial_rng(42, 0);
    let mut served = [0usize; 8];
    let mut offloaded = 0;
    let rounds = 200;
    for _ in 0..rounds {
        let circuits = CircuitState::new(&net);
        // Busy nodes each want to push one task somewhere idle.
        let requesting: Vec<usize> = (0..3).filter(|_| rng.random_range(0..10) < 8).collect();
        let idle: Vec<usize> = (4..8).filter(|_| rng.random_range(0..10) < 7).collect();
        if requesting.is_empty() || idle.is_empty() {
            continue;
        }
        let problem = ScheduleProblem::homogeneous(&circuits, &requesting, &idle);
        let out = MaxFlowScheduler::default().schedule(&problem);
        for a in &out.assignments {
            served[a.resource] += 1;
            offloaded += 1;
        }
    }
    println!("\nafter {rounds} rebalancing rounds, {offloaded} tasks were offloaded:");
    for (node, count) in served.iter().enumerate() {
        let bar = "#".repeat(count / 8);
        println!("  node {node}: {count:>4} tasks {bar}");
    }
    let busy: Vec<usize> = served[4..8].to_vec();
    let max = *busy.iter().max().unwrap() as f64;
    let min = *busy.iter().min().unwrap() as f64;
    println!(
        "\nspread across idle nodes: max/min = {:.2} (1.0 would be perfectly even)",
        if min > 0.0 { max / min } else { f64::INFINITY }
    );
    println!(
        "every overloaded node shipped work without knowing *which* idle node\n\
         would take it — the RSIN found a maximum matching each round."
    );
}
