//! Shared pretty-printing helpers for the runnable examples.

use rsin_core::mapping::Assignment;
use rsin_core::model::ScheduleOutcome;
use rsin_topology::Network;

/// Print an outcome as `(pX, rY)` pairs with path lengths.
pub fn print_outcome(net: &Network, outcome: &ScheduleOutcome) {
    let mut rows: Vec<&Assignment> = outcome.assignments.iter().collect();
    rows.sort_by_key(|a| a.processor);
    for a in rows {
        println!(
            "  p{:<2} -> r{:<2}  ({} links through {})",
            a.processor + 1,
            a.resource + 1,
            a.path.len(),
            net.name()
        );
    }
    if !outcome.blocked.is_empty() {
        let blocked: Vec<String> = outcome
            .blocked
            .iter()
            .map(|p| format!("p{}", p + 1))
            .collect();
        println!("  blocked: {}", blocked.join(", "));
    }
}
