//! PUMPS: heterogeneous scheduling of shared VLSI systolic arrays.
//!
//! The paper's motivating system (Fig. 1(a)): the PUMPS architecture for
//! image analysis shares a pool of special-purpose VLSI units — here FFT
//! engines, convolution arrays, and histogram units — among processors via
//! an RSIN. Requests carry a *type* (which kind of unit they need) and a
//! *priority* (interactive analysis beats batch jobs); units carry
//! *preferences* (newer, faster revisions are preferred).
//!
//! ```text
//! cargo run -p rsin-examples --bin pumps
//! ```

use rsin_core::model::{FreeResource, ScheduleProblem, ScheduleRequest};
use rsin_core::scheduler::{MultiCommodityScheduler, Scheduler};
use rsin_examples::print_outcome;
use rsin_topology::builders::omega;
use rsin_topology::CircuitState;

const FFT: usize = 0;
const CONV: usize = 1;
const HIST: usize = 2;

fn main() {
    let net = omega(16).unwrap();
    println!("PUMPS resource pool behind {}", net.summary());
    let type_name = |t: usize| ["FFT", "convolution", "histogram"][t];

    // Output ports 0..15 host a mixed pool of systolic arrays.
    let pool = [
        (0, FFT, 9),
        (1, CONV, 5),
        (2, HIST, 7),
        (3, FFT, 3),
        (5, CONV, 8),
        (6, FFT, 6),
        (8, HIST, 4),
        (9, CONV, 2),
        (11, FFT, 10),
        (13, HIST, 9),
    ];
    // Image-analysis tasks pending at the processors.
    let tasks = [
        (0, FFT, 10),  // interactive spectral view
        (2, CONV, 8),  // edge detection for the same session
        (3, FFT, 2),   // batch re-indexing
        (5, HIST, 6),  // equalization
        (7, CONV, 4),  // batch filtering
        (9, FFT, 7),   // preview rendering
        (12, HIST, 3), // statistics sweep
    ];

    let circuits = CircuitState::new(&net);
    let problem = ScheduleProblem {
        circuits: &circuits,
        requests: tasks
            .iter()
            .map(|&(p, ty, pri)| ScheduleRequest {
                processor: p,
                priority: pri,
                resource_type: ty,
            })
            .collect(),
        free: pool
            .iter()
            .map(|&(r, ty, pref)| FreeResource {
                resource: r,
                preference: pref,
                resource_type: ty,
            })
            .collect(),
    };

    println!("\npending tasks:");
    for &(p, ty, pri) in &tasks {
        println!(
            "  p{:<2} wants a {:<11} unit (priority {pri})",
            p + 1,
            type_name(ty)
        );
    }
    println!("\nfree units:");
    for &(r, ty, pref) in &pool {
        println!(
            "  r{:<2} is a {:<11} unit (preference {pref})",
            r + 1,
            type_name(ty)
        );
    }

    let out = MultiCommodityScheduler::with_priorities().schedule(&problem);
    rsin_core::mapping::verify(&out.assignments, &problem).expect("valid");
    println!(
        "\nmulticommodity min-cost schedule ({} of {} tasks placed, cost {}):",
        out.allocated(),
        tasks.len(),
        out.total_cost
    );
    print_outcome(&net, &out);
    for a in &out.assignments {
        let ty = problem
            .requests
            .iter()
            .find(|r| r.processor == a.processor)
            .unwrap();
        let unit = problem
            .free
            .iter()
            .find(|f| f.resource == a.resource)
            .unwrap();
        assert_eq!(ty.resource_type, unit.resource_type, "types always match");
    }
    println!("\nevery task landed on a unit of its own type; high-priority interactive");
    println!("work got the preferred hardware — scheduled by the network, not by an");
    println!("address-mapping front end.");
}
