//! Offline, API-compatible subset of the `rand` 0.9 crate.
//!
//! The build container has no network access and the registry mirror is
//! unreachable, so the workspace vendors the small slice of `rand` it
//! actually uses: [`RngCore`], [`Rng::random_range`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace's statistical tests
//! are threshold-based, not golden-value-based, so only distribution
//! quality matters, and xoshiro256++ passes BigCrush.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` by Lemire's widening-multiply method.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $bits:expr, $next:ident),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Uniform in [0, 1) with the full mantissa, then affine map.
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to `end`.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_float_range!(f64 => 53, next_u64, f32 => 24, next_u32);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a `u64` through SplitMix64 (the upstream
    /// crate documents the same expansion strategy).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 1, 2];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1..=5i64);
            assert!((1..=5).contains(&w));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniform_float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }
}
