//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build container cannot reach a crate registry, so the workspace
//! vendors the slice of proptest its tests use: the [`proptest!`] macro,
//! range/tuple/`Just`/`collection::vec`/`sample` strategies, the
//! `prop_assert*` macros, and [`test_runner::TestCaseError`].
//!
//! Unlike upstream, failing cases are **not shrunk**; the panic message
//! reports the deterministic per-case seed instead, so a failure is
//! reproducible by construction (the runner derives case seeds from the
//! test name and case index, never from ambient entropy).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies while generating one test case.
pub type TestRng = StdRng;

/// Runner types: configuration and the error a test case can raise.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case's inputs did not satisfy a `prop_assume!`.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection (not a failure).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A generator of values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this shim generates values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a new strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Transform each generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing the predicate (retry-based).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let v = self.inner.generate(rng);
        (self.f)(v).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values ({})",
            self.whence
        )
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, used through [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> sample::Index {
        sample::Index::new(rand::RngCore::next_u64(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<Index>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length constraint for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::random_range(rng, self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)`: a vector whose length is drawn from the
    /// range and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// An opaque index resolvable against any nonempty length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolve against a collection of length `len` (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy yielding a uniformly random size-`amount` subsequence of
    /// `values`, preserving order.
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        amount: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            let mut need = self.amount;
            let mut out = Vec::with_capacity(need);
            for (i, v) in self.values.iter().enumerate() {
                if need == 0 {
                    break;
                }
                let remaining = n - i;
                // Include with probability need/remaining: a uniform
                // combination draw.
                if rand::Rng::random_range(rng, 0..remaining) < need {
                    out.push(v.clone());
                    need -= 1;
                }
            }
            out
        }
    }

    /// Choose `amount` of `values` uniformly at random, order-preserving.
    pub fn subsequence<T: Clone>(values: Vec<T>, amount: usize) -> Subsequence<T> {
        assert!(amount <= values.len(), "subsequence amount exceeds len");
        Subsequence { values, amount }
    }
}

/// Everything a proptest file conventionally glob-imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic seed for `(test, case)`: FNV-1a over the name, mixed with
/// the case index.
fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Drive one property: `cases` deterministic cases, bounded rejections.
///
/// Called by the [`proptest!`] macro expansion; not part of upstream's API.
pub fn run_proptest<F>(config: &test_runner::Config, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut rejects: u32 = 0;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    let mut case = 0u32;
    let mut attempt = 0u32;
    while case < config.cases {
        let seed = case_seed(name, attempt);
        attempt += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected inputs \
                         ({rejects} rejects for {case} accepted cases)"
                    );
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {case} (seed {seed:#x}):\n{msg}");
            }
        }
    }
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

/// Reject the current inputs (not a failure) inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Bind `pat in strategy` parameter lists inside [`proptest!`] expansions.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Expand each `fn name(params) { body }` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&config, stringify!($name), |__pt_rng| {
                $crate::__proptest_bind!(__pt_rng, $($params)*);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { ... }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3usize..9, b in -4i64..5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-4..5).contains(&b));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn flat_map_and_tuples((n, xs) in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0usize..n, 1..4))
        })) {
            for x in xs {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>(), len in 1usize..20) {
            prop_assert!(ix.index(len) < len);
        }

        #[test]
        fn subsequence_full_is_identity(s in prop::sample::subsequence((0..8usize).collect::<Vec<_>>(), 8)) {
            prop_assert_eq!(s, (0..8).collect::<Vec<_>>());
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_proptest(
                &ProptestConfig::with_cases(10),
                "determinism_probe",
                |rng| {
                    out.push(crate::Strategy::generate(&(0u64..1000), rng));
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
    }
}
