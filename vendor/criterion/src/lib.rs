//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build container cannot reach a crate registry, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is plain wall-clock sampling (no outlier analysis, plots,
//! or saved baselines): each benchmark is calibrated with one timed call,
//! then measured over `sample_size` samples within a fixed time budget and
//! reported as mean ns/iter on stdout. Under `cargo test` (which runs
//! `harness = false` bench targets with `--test`) every routine executes
//! exactly once, as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times one routine; handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`, calibrating the per-sample iteration count so the
    /// whole benchmark fits a fixed budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.elapsed = Duration::ZERO;
            self.iters = 1;
            return;
        }
        // Calibrate: one timed call decides the batch size.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(300);
        let per_sample = (budget.as_nanos() / self.sample_size.max(1) as u128)
            .checked_div(once.as_nanos())
            .unwrap_or(1)
            .clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            total += t.elapsed();
            iters += per_sample;
        }
        self.elapsed = total;
        self.iters = iters;
    }
}

/// Benchmark driver; one per bench binary.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo runs `harness = false` bench targets under `cargo test`
        // with `--test`; honour it by executing each routine once.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 10,
        }
    }
}

fn run_one(name: &str, test_mode: bool, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        test_mode,
        sample_size,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if test_mode {
        println!("test {name} ... ok");
    } else if b.iters > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("bench {name:<50} {ns:>14.1} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {name:<50} (no measurement: Bencher::iter never called)");
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        run_one(name, self.test_mode, self.sample_size, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, self.criterion.test_mode, samples, |b| f(b, input));
        self
    }

    /// Run one benchmark without an explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, self.criterion.test_mode, samples, |b| f(b));
        self
    }

    /// Close the group (report-flushing is a no-op here).
    pub fn finish(self) {}
}

/// Define a benchmark group function from `fn(&mut Criterion)` items.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups; ignores harness CLI arguments.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion {
            test_mode: true,
            sample_size: 5,
        };
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1, "test mode runs the routine exactly once");
    }

    #[test]
    fn group_applies_sample_size() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 5,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("f", 1), &7usize, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
